package serve

// Bounded admission queue + strong-simulation worker pool.
//
// Strong simulation is the expensive, budget-governed stage, so it runs on a
// fixed-size worker pool behind a bounded queue: when every worker is busy
// and the queue is full, new work is rejected immediately (HTTP 429 with
// Retry-After) instead of piling up unbounded goroutines — load shedding at
// the boundary, exactly like the node budget sheds load inside the engine.
//
// Sampling, by contrast, runs on the request goroutine itself: a cached
// frozen snapshot makes it cheap, lock-free, and impossible to MO, so there
// is nothing to queue for.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

// ErrQueueFull reports that the admission queue rejected a simulation job.
// Handlers map it to HTTP 429 Too Many Requests.
var ErrQueueFull = errors.New("serve: simulation admission queue is full")

// ErrDraining reports that the pool is shutting down and accepts no new
// work. Handlers map it to HTTP 503 Service Unavailable.
var ErrDraining = errors.New("serve: server is draining")

// simJob is one queued strong-simulation request.
type simJob struct {
	run      func() // executes the compute and resolves the flight
	enqueued time.Time
	rt       *obs.RequestTrace // submitting request's trace (nil when disabled)
}

// simPool runs queued simulation jobs on a fixed set of workers.
type simPool struct {
	jobs    chan *simJob
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	workers int

	depth    *obs.Gauge
	rejected *obs.Counter
	sims     *obs.Counter
	queueNS  *obs.Counter
	tracer   *obs.Tracer
}

func newSimPool(workers, depth int, reg *obs.Registry, tr *obs.Tracer) *simPool {
	if workers < 1 {
		workers = 1
	}
	if depth < 0 {
		depth = 0
	}
	p := &simPool{
		jobs:     make(chan *simJob, depth),
		workers:  workers,
		depth:    reg.Gauge("serve_queue_depth"),
		rejected: reg.Counter("serve_queue_rejected_total"),
		sims:     reg.Counter("serve_sims_total"),
		queueNS:  reg.Counter("phase_" + obs.PhaseQueue + "_ns"),
		tracer:   tr,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *simPool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		p.depth.Set(int64(len(p.jobs)))
		wait := time.Since(job.enqueued)
		p.queueNS.Add(uint64(wait.Nanoseconds()))
		p.tracer.Event(obs.PhaseQueue, "dequeue", map[string]any{"wait_ns": wait.Nanoseconds()})
		// The queue wait belongs to the submitting request's trace, but only
		// the worker knows when the job was picked up — record it here from
		// the explicit timestamps. The span lands before job.run takes its
		// single-flight mark, so coalesced waiters never inherit the leader's
		// queue wait.
		job.rt.AddSpanAt(obs.PhaseQueue, job.enqueued, wait, nil)
		p.sims.Inc()
		job.run()
	}
}

// submit enqueues a job without blocking. It fails with ErrQueueFull when
// the queue is at capacity and with ErrDraining after close.
func (p *simPool) submit(run func()) error { return p.submitWith(nil, run) }

// submitWith is submit with request-trace attribution: the dequeuing worker
// records the queue-wait span into rt (nil skips, costing nothing).
func (p *simPool) submitWith(rt *obs.RequestTrace, run func()) error {
	// Fault hook: an injected error is indistinguishable from a full queue —
	// the caller sheds load (HTTP 429 + Retry-After) exactly as it would
	// under real pressure. Hit before the lock so latency faults don't
	// serialize concurrent submitters.
	if err := fault.Hit(fault.ServeQueueSubmit); err != nil {
		p.rejected.Inc()
		return fmt.Errorf("%w (fault injected)", ErrQueueFull)
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.rejected.Inc()
		return ErrDraining
	}
	job := &simJob{run: run, enqueued: time.Now(), rt: rt}
	select {
	case p.jobs <- job:
		p.depth.Set(int64(len(p.jobs)))
		p.mu.Unlock()
		return nil
	default:
		p.mu.Unlock()
		p.rejected.Inc()
		return ErrQueueFull
	}
}

// close stops admission and waits for queued and running jobs to finish, or
// for ctx to expire (running simulations observe their own cancellation; a
// blown drain deadline abandons the wait, not the workers).
func (p *simPool) close(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// queued returns the current queue length.
func (p *simPool) queued() int { return len(p.jobs) }
