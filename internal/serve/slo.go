package serve

// SLO engine: per-endpoint latency objectives and availability error
// budgets, with multi-window burn rates.
//
// The vocabulary is the standard SRE one. An SLO names a target fraction of
// "good" requests (e.g. 99.9% non-5xx, 99% under the latency objective);
// the complement is the error budget. The burn rate over a window is
//
//	burn = (bad fraction in window) / (1 - target)
//
// so burn 1.0 spends the budget exactly at the sustainable rate, and burn
// 14.4 over 5 minutes is the classic "page now" fast burn: kept up, it
// exhausts a 30-day budget in ~2 hours. /v1/slo reports both a fast (5m)
// and a slow (1h) window per endpoint; the fast window crossing the
// threshold additionally TRIPS the flight recorder, so by the time a human
// looks, the spans of the requests that burned the budget are already on
// disk.
//
// Bookkeeping is a per-endpoint ring of 15-second buckets (240 buckets =
// 1h). Each request completion increments one bucket; window tallies scan
// at most 240 epoch-tagged buckets, so stale buckets from an idle hour
// self-invalidate without a sweeper goroutine.

import (
	"sync"
	"time"

	"weaksim/internal/obs"
)

// SLO is one endpoint's objectives.
type SLO struct {
	// Endpoint is the request path the objectives apply to ("/v1/sample").
	Endpoint string `json:"endpoint"`
	// LatencyObjective is the per-request latency threshold; requests at or
	// under it are "fast".
	LatencyObjective time.Duration `json:"-"`
	// LatencyTarget is the fraction of requests that must be fast
	// (e.g. 0.99).
	LatencyTarget float64 `json:"latency_target"`
	// AvailabilityTarget is the fraction of requests that must not fail
	// with a 5xx status (e.g. 0.999). Load-shed 4xx answers (429) are
	// policy, not failure, and do not burn budget.
	AvailabilityTarget float64 `json:"availability_target"`
}

// DefaultSLOs returns the stock objectives: /v1/sample gets a latency
// objective of half the request timeout (a request that needs the full
// deadline is not "fast"), the cheap read endpoints get 50ms.
func DefaultSLOs(requestTimeout time.Duration) []SLO {
	sampleObj := requestTimeout / 2
	if sampleObj <= 0 {
		sampleObj = DefaultRequestTimeout / 2
	}
	const readObj = 50 * time.Millisecond
	return []SLO{
		{Endpoint: "/v1/sample", LatencyObjective: sampleObj, LatencyTarget: 0.99, AvailabilityTarget: 0.999},
		{Endpoint: "/v1/stats", LatencyObjective: readObj, LatencyTarget: 0.99, AvailabilityTarget: 0.999},
		{Endpoint: "/v1/circuits", LatencyObjective: readObj, LatencyTarget: 0.99, AvailabilityTarget: 0.999},
	}
}

// Window geometry. fastBuckets covers 5 minutes, the full ring 1 hour.
const (
	sloBucketSeconds = 15
	sloRingBuckets   = 240 // 1h
	sloFastBuckets   = 20  // 5m
)

// FastBurnThreshold is the 5m burn rate that trips the flight recorder —
// the conventional fast-burn paging threshold (budget gone in ~2h if
// sustained).
const FastBurnThreshold = 14.4

type sloBucket struct {
	epoch             int64 // unix seconds / sloBucketSeconds; 0 = never used
	total, errs, slow uint64
}

// sloState is one endpoint's objectives plus its bucket ring.
type sloState struct {
	spec     SLO
	buckets  [sloRingBuckets]sloBucket
	breached bool // rising-edge detector for recorder trips
}

// sloEngine evaluates the configured SLOs as requests complete. All methods
// are safe for concurrent use; a nil engine is a no-op.
type sloEngine struct {
	mu       sync.Mutex
	states   map[string]*sloState
	order    []string // stable report order (config order)
	recorder *obs.FlightRecorder
	trips    *obs.Counter
	now      func() time.Time // injectable clock for tests
}

func newSLOEngine(slos []SLO, rec *obs.FlightRecorder, reg *obs.Registry) *sloEngine {
	e := &sloEngine{
		states:   make(map[string]*sloState, len(slos)),
		recorder: rec,
		trips:    reg.Counter("serve_slo_trips_total"),
		now:      time.Now,
	}
	for _, s := range slos {
		if s.Endpoint == "" || s.LatencyTarget >= 1 || s.AvailabilityTarget >= 1 {
			continue // a target of 1.0 has a zero budget: burn is undefined
		}
		if _, dup := e.states[s.Endpoint]; dup {
			continue
		}
		e.states[s.Endpoint] = &sloState{spec: s}
		e.order = append(e.order, s.Endpoint)
	}
	return e
}

// bucket returns the live bucket for now, resetting it when its epoch is
// stale (ring wrap). Caller holds e.mu.
func (st *sloState) bucket(now time.Time) *sloBucket {
	epoch := now.Unix() / sloBucketSeconds
	b := &st.buckets[epoch%sloRingBuckets]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	return b
}

// tally sums the last n buckets ending at now. Caller holds e.mu.
func (st *sloState) tally(now time.Time, n int) (total, errs, slow uint64) {
	nowEpoch := now.Unix() / sloBucketSeconds
	min := nowEpoch - int64(n) + 1
	for i := range st.buckets {
		b := &st.buckets[i]
		if b.epoch >= min && b.epoch <= nowEpoch {
			total += b.total
			errs += b.errs
			slow += b.slow
		}
	}
	return total, errs, slow
}

// burnRates converts a window tally into availability and latency burn
// rates. An empty window burns nothing.
func (st *sloState) burnRates(total, errs, slow uint64) (availBurn, latBurn float64) {
	if total == 0 {
		return 0, 0
	}
	availBudget := 1 - st.spec.AvailabilityTarget
	latBudget := 1 - st.spec.LatencyTarget
	availBurn = (float64(errs) / float64(total)) / availBudget
	latBurn = (float64(slow) / float64(total)) / latBudget
	return availBurn, latBurn
}

// observe records one finished request and trips the flight recorder on a
// rising fast-burn breach. Safe for concurrent use; nil engine and
// unconfigured endpoints are no-ops.
func (e *sloEngine) observe(endpoint string, dur time.Duration, status int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	st := e.states[endpoint]
	if st == nil {
		e.mu.Unlock()
		return
	}
	now := e.now()
	b := st.bucket(now)
	b.total++
	isErr := status >= 500
	if isErr {
		b.errs++
	}
	isSlow := dur > st.spec.LatencyObjective
	if isSlow {
		b.slow++
	}
	availBurn, latBurn := st.burnRates(st.tally(now, sloFastBuckets))
	breach := availBurn >= FastBurnThreshold || latBurn >= FastBurnThreshold
	rising := breach && !st.breached
	st.breached = breach
	e.mu.Unlock()

	if rising {
		e.trips.Inc()
		e.recorder.Trip("slo-breach", map[string]any{
			"endpoint":          endpoint,
			"availability_burn": availBurn,
			"latency_burn":      latBurn,
			"window":            "5m",
			"status":            status,
			"dur_ns":            dur.Nanoseconds(),
		})
	}
}

// sloWindowReport is one (endpoint, window) tally in the /v1/slo body.
type sloWindowReport struct {
	Requests         uint64  `json:"requests"`
	Errors           uint64  `json:"errors"`
	Slow             uint64  `json:"slow"`
	AvailabilityBurn float64 `json:"availability_burn"`
	LatencyBurn      float64 `json:"latency_burn"`
}

// sloEndpointReport is one endpoint's /v1/slo entry.
type sloEndpointReport struct {
	Endpoint           string                     `json:"endpoint"`
	LatencyObjectiveMS float64                    `json:"latency_objective_ms"`
	LatencyTarget      float64                    `json:"latency_target"`
	AvailabilityTarget float64                    `json:"availability_target"`
	Windows            map[string]sloWindowReport `json:"windows"`
	// Budget remaining over the 1h window, as a fraction of the error
	// budget (1 = untouched, 0 = exactly spent, negative = overdrawn).
	AvailabilityBudgetRemaining float64 `json:"availability_budget_remaining"`
	LatencyBudgetRemaining      float64 `json:"latency_budget_remaining"`
	// Breached reports whether the endpoint is currently in a fast-burn
	// breach (the flight recorder tripped when it began).
	Breached bool `json:"breached"`
}

// sloReport is the GET /v1/slo body.
type sloReport struct {
	WindowSeconds map[string]int64    `json:"window_seconds"`
	BurnThreshold float64             `json:"fast_burn_threshold"`
	Trips         uint64              `json:"trips_total"`
	SLOs          []sloEndpointReport `json:"slos"`
}

// report builds the /v1/slo body. Safe for concurrent use.
func (e *sloEngine) report() sloReport {
	rep := sloReport{
		WindowSeconds: map[string]int64{
			"5m": sloFastBuckets * sloBucketSeconds,
			"1h": sloRingBuckets * sloBucketSeconds,
		},
		BurnThreshold: FastBurnThreshold,
		SLOs:          []sloEndpointReport{},
	}
	if e == nil {
		return rep
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	rep.Trips = e.trips.Value()
	now := e.now()
	for _, ep := range e.order {
		st := e.states[ep]
		fastT, fastE, fastS := st.tally(now, sloFastBuckets)
		slowT, slowE, slowS := st.tally(now, sloRingBuckets)
		fastAB, fastLB := st.burnRates(fastT, fastE, fastS)
		slowAB, slowLB := st.burnRates(slowT, slowE, slowS)
		rep.SLOs = append(rep.SLOs, sloEndpointReport{
			Endpoint:           ep,
			LatencyObjectiveMS: float64(st.spec.LatencyObjective.Nanoseconds()) / 1e6,
			LatencyTarget:      st.spec.LatencyTarget,
			AvailabilityTarget: st.spec.AvailabilityTarget,
			Windows: map[string]sloWindowReport{
				"5m": {Requests: fastT, Errors: fastE, Slow: fastS, AvailabilityBurn: fastAB, LatencyBurn: fastLB},
				"1h": {Requests: slowT, Errors: slowE, Slow: slowS, AvailabilityBurn: slowAB, LatencyBurn: slowLB},
			},
			AvailabilityBudgetRemaining: 1 - slowAB,
			LatencyBudgetRemaining:      1 - slowLB,
			Breached:                    st.breached,
		})
	}
	return rep
}
