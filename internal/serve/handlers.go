package serve

// HTTP surface of the sampling daemon.
//
//	POST /v1/sample    {qasm|circuit, shots?, seed?, workers?, timeout_ms?}
//	                   → {counts, qubits, shots, seed, workers, cached, ...}
//	GET  /v1/circuits  → named benchmark circuits (internal/algo)
//	GET  /v1/stats     → cache / queue / request statistics
//	GET  /healthz      → liveness + summary
//
// Errors always carry a structured JSON body:
//
//	{"error": {"code": "memory_out", "message": "...", "status": 507}}
//
// The governance → status mapping is the degradation ladder of PR 1 pushed
// through the network boundary: MO → 507, TO → 504, queue-full → 429 with
// Retry-After, draining → 503.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/obs"
	"weaksim/internal/statevec"
)

// sampleRequest is the POST /v1/sample body. Exactly one of QASM and Circuit
// must be set.
type sampleRequest struct {
	// QASM is OpenQASM 2.0 source for the circuit to sample.
	QASM string `json:"qasm,omitempty"`
	// Circuit names an internal/algo benchmark (e.g. "qft_16", "ghz_8").
	Circuit string `json:"circuit,omitempty"`
	// Shots is the number of measurement samples (default DefaultShots,
	// capped at MaxShots).
	Shots int `json:"shots,omitempty"`
	// Seed seeds sampling; omitted means 1. Counts are a pure function of
	// (circuit, seed, shots, workers).
	Seed *uint64 `json:"seed,omitempty"`
	// Workers shards the shot batch across concurrent lock-free walkers
	// over the cached snapshot (default 1, capped at MaxSampleWorkers).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS lowers the request deadline below the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// sampleResponse is the POST /v1/sample success body.
type sampleResponse struct {
	// Counts maps measured bitstrings (most significant qubit first) to
	// occurrence counts; values sum to Shots.
	Counts  map[string]int `json:"counts"`
	Qubits  int            `json:"qubits"`
	Shots   int            `json:"shots"`
	Seed    uint64         `json:"seed"`
	Workers int            `json:"workers"`
	// Cached reports whether the frozen snapshot was already resident (no
	// strong simulation ran for this request, not even a shared one).
	Cached bool `json:"cached"`
	// CircuitKey is the canonical circuit hash — the cache key.
	CircuitKey string `json:"circuit_key"`
	// SnapshotNodes is the frozen DD size (the paper's "size" column).
	SnapshotNodes int `json:"snapshot_nodes"`
	// SimNS is the wall-clock cost of the strong simulation + freeze that
	// built the snapshot (amortized across every request that reuses it).
	SimNS int64 `json:"sim_ns"`
	// SampleNS is this request's sampling wall-clock.
	SampleNS int64 `json:"sample_ns"`
}

// errorBody is the structured error envelope of every non-2xx response.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	// Code is a stable machine-readable error class: bad_request,
	// memory_out, timeout, queue_full, draining, internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
	// RetryAfterMS suggests a backoff for retryable rejections (queue_full).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// retryAfter is the backoff hint attached to 429 responses.
const retryAfter = time.Second

// Handler returns the daemon's HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", s.handleSample)
	mux.HandleFunc("/v1/circuits", s.handleCircuits)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	return mux
}

// classify maps an error to its HTTP status and stable code, mirroring
// cmd/weaksim's exit codes (MO=3 → 507, TO=4 → 504).
func classify(err error) (int, string) {
	var pe *panicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic" // recovered worker panic; daemon keeps serving
	case errors.Is(err, dd.ErrNodeBudget), errors.Is(err, statevec.ErrMemoryOut):
		return http.StatusInsufficientStorage, "memory_out" // 507: the paper's MO
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout" // 504: the paper's TO
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "cancelled"
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full" // 429 + Retry-After
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// badRequest wraps a 400-class error so writeError can classify it.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.reqErrors.Inc()
	status, code := classify(err)
	var br badRequest
	if errors.As(err, &br) {
		status, code = http.StatusBadRequest, "bad_request"
	}
	info := errorInfo{Code: code, Message: err.Error(), Status: status}
	if status == http.StatusTooManyRequests {
		info.RetryAfterMS = retryAfter.Milliseconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds())))
	}
	writeJSON(w, status, errorBody{Error: info})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// parseRequest decodes and validates a sample request, returning the circuit
// and the resolved sampling parameters.
func (s *Server) parseRequest(r *http.Request) (*circuit.Circuit, *sampleRequest, error) {
	defer obs.StartPhase(s.cfg.Metrics, s.cfg.Tracer, obs.PhaseParse)()
	var req sampleRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, badRequest{fmt.Errorf("invalid JSON body: %w", err)}
	}
	if (req.QASM == "") == (req.Circuit == "") {
		return nil, nil, badRequest{errors.New(`exactly one of "qasm" and "circuit" must be set`)}
	}
	var circ *circuit.Circuit
	var err error
	if req.Circuit != "" {
		circ, err = algo.Generate(req.Circuit)
		if err != nil {
			return nil, nil, badRequest{err}
		}
	} else {
		circ, err = qasm.Parse(req.QASM, "request")
		if err != nil {
			return nil, nil, badRequest{err}
		}
	}
	if err := circ.Validate(); err != nil {
		return nil, nil, badRequest{err}
	}
	if circ.NQubits > s.cfg.MaxQubits {
		return nil, nil, badRequest{fmt.Errorf("circuit has %d qubits; this server accepts at most %d",
			circ.NQubits, s.cfg.MaxQubits)}
	}
	if req.Shots == 0 {
		req.Shots = s.cfg.DefaultShots
	}
	if req.Shots < 1 {
		return nil, nil, badRequest{fmt.Errorf("shots must be positive, got %d", req.Shots)}
	}
	if req.Shots > s.cfg.MaxShots {
		return nil, nil, badRequest{fmt.Errorf("shots %d exceeds the per-request cap %d", req.Shots, s.cfg.MaxShots)}
	}
	if req.Seed == nil {
		one := uint64(1)
		req.Seed = &one
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.Workers < 1 || req.Workers > s.cfg.MaxSampleWorkers {
		return nil, nil, badRequest{fmt.Errorf("workers must be in [1, %d], got %d",
			s.cfg.MaxSampleWorkers, req.Workers)}
	}
	if req.TimeoutMS < 0 {
		return nil, nil, badRequest{fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMS)}
	}
	return circ, &req, nil
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use POST", Status: http.StatusMethodNotAllowed}})
		return
	}
	begin := time.Now()
	s.reqTotal.Inc()
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.reqHist.ObserveDuration(time.Since(begin))
	}()
	// Last-resort panic isolation on the request goroutine itself (the
	// simulation pool has its own in snapCache.run): one structured 500, and
	// the daemon keeps serving.
	defer func() {
		if r := recover(); r != nil {
			s.cache.panics.Inc()
			s.writeError(w, &panicError{val: r})
		}
	}()
	sp := s.cfg.Tracer.Start(obs.PhaseServe, "sample")

	circ, req, err := s.parseRequest(r)
	if err != nil {
		sp.End(map[string]any{"error": err.Error()})
		s.writeError(w, err)
		return
	}

	// Per-request deadline: the server default, lowered by timeout_ms.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := CircuitKey(circ, s.cfg.Norm, false)
	ent, cached, err := s.lookup(ctx, key, circ)
	if err != nil {
		sp.End(map[string]any{"error": err.Error(), "key": key})
		s.writeError(w, err)
		return
	}

	// Sampling: lock-free walks over the immutable snapshot, sharded across
	// the requested worker count. Counts are a pure function of
	// (circuit, seed, shots, workers) — rerunning the request reproduces
	// them bit for bit, at any cache temperature.
	stopSample := obs.StartPhase(s.cfg.Metrics, s.cfg.Tracer, obs.PhaseSample)
	sampleStart := time.Now()
	idxCounts, _, err := core.CountsParallelContext(ctx, ent.sampler, *req.Seed, req.Shots, req.Workers)
	sampleNS := time.Since(sampleStart).Nanoseconds()
	stopSample()
	if err != nil {
		sp.End(map[string]any{"error": err.Error(), "key": key})
		s.writeError(w, err)
		return
	}
	s.shotsCtr.Add(uint64(req.Shots))

	counts := make(map[string]int, len(idxCounts))
	for idx, n := range idxCounts {
		counts[core.FormatBits(idx, ent.qubits)] = n
	}
	resp := sampleResponse{
		Counts:        counts,
		Qubits:        ent.qubits,
		Shots:         req.Shots,
		Seed:          *req.Seed,
		Workers:       req.Workers,
		Cached:        cached,
		CircuitKey:    key,
		SnapshotNodes: ent.sampler.Snapshot().Len(),
		SimNS:         ent.simNS,
		SampleNS:      sampleNS,
	}
	sp.End(map[string]any{"key": key, "cached": cached, "shots": req.Shots})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use GET", Status: http.StatusMethodNotAllowed}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table1": algo.TableIBenchmarks(),
	})
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	UptimeMS      int64      `json:"uptime_ms"`
	Requests      uint64     `json:"requests_total"`
	Errors        uint64     `json:"errors_total"`
	Shots         uint64     `json:"shots_total"`
	Sims          uint64     `json:"sims_total"`
	QueueDepth    int        `json:"queue_depth"`
	QueueRejected uint64     `json:"queue_rejected_total"`
	Cache         cacheStats `json:"cache"`
}

func (s *Server) statsNow() statsResponse {
	return statsResponse{
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Requests:      s.reqTotal.Value(),
		Errors:        s.reqErrors.Value(),
		Shots:         s.shotsCtr.Value(),
		Sims:          s.pool.sims.Value(),
		QueueDepth:    s.pool.queued(),
		QueueRejected: s.pool.rejected.Value(),
		Cache:         s.cache.stats(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsNow())
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// answer HTTP at all, draining or not. Restart the process when this fails.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"stats":  s.statsNow(),
	})
}

// handleReadyz is the readiness probe: 503 from the moment a drain begins,
// so load balancers stop routing new requests here while in-flight work
// finishes. Distinct from liveness — a draining process is healthy.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}
