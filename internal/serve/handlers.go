package serve

// HTTP surface of the sampling daemon.
//
//	POST /v1/sample    {qasm|circuit, shots?, seed?, workers?, timeout_ms?}
//	                   → {counts, qubits, shots, seed, workers, cached, ...}
//	GET  /v1/circuits  → named benchmark circuits (internal/algo)
//	GET  /v1/stats     → cache / queue / request statistics
//	GET  /healthz      → liveness + summary
//
// Errors always carry a structured JSON body:
//
//	{"error": {"code": "memory_out", "message": "...", "status": 507}}
//
// The governance → status mapping is the degradation ladder of PR 1 pushed
// through the network boundary: MO → 507, TO → 504, queue-full → 429 with
// Retry-After, draining → 503.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/job"
	"weaksim/internal/obs"
	"weaksim/internal/statevec"
)

// sampleRequest is the POST /v1/sample body. Exactly one of QASM and Circuit
// must be set.
type sampleRequest struct {
	// QASM is OpenQASM 2.0 source for the circuit to sample.
	QASM string `json:"qasm,omitempty"`
	// Circuit names an internal/algo benchmark (e.g. "qft_16", "ghz_8").
	Circuit string `json:"circuit,omitempty"`
	// Shots is the number of measurement samples (default DefaultShots,
	// capped at MaxShots).
	Shots int `json:"shots,omitempty"`
	// Seed seeds sampling; omitted means 1. Counts are a pure function of
	// (circuit, seed, shots, workers).
	Seed *uint64 `json:"seed,omitempty"`
	// Workers shards the shot batch across concurrent lock-free walkers
	// over the cached snapshot (default 1, capped at MaxSampleWorkers).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS lowers the request deadline below the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// sampleResponse is the POST /v1/sample success body.
type sampleResponse struct {
	// Counts maps measured bitstrings (most significant qubit first) to
	// occurrence counts; values sum to Shots.
	Counts  map[string]int `json:"counts"`
	Qubits  int            `json:"qubits"`
	Shots   int            `json:"shots"`
	Seed    uint64         `json:"seed"`
	Workers int            `json:"workers"`
	// Cached reports whether the frozen snapshot was already resident (no
	// strong simulation ran for this request, not even a shared one).
	Cached bool `json:"cached"`
	// CircuitKey is the canonical circuit hash — the cache key.
	CircuitKey string `json:"circuit_key"`
	// SnapshotNodes is the frozen DD size (the paper's "size" column).
	SnapshotNodes int `json:"snapshot_nodes"`
	// SimNS is the wall-clock cost of the strong simulation + freeze that
	// built the snapshot (amortized across every request that reuses it).
	SimNS int64 `json:"sim_ns"`
	// SampleNS is this request's sampling wall-clock.
	SampleNS int64 `json:"sample_ns"`
	// Trace echoes the request's span tree and per-phase timing breakdown
	// when the request asked for it (?debug=1) and tracing is enabled.
	Trace *traceDebug `json:"trace,omitempty"`
}

// traceDebug is the ?debug=1 trace echo: where this request's latency went.
type traceDebug struct {
	// TraceID matches the X-Weaksim-Trace-Id response header.
	TraceID string `json:"trace_id"`
	// PhaseNS sums the request's own (non-shared) timed spans per phase.
	// For a cold request the sequential phases — parse, queue, build,
	// apply, freeze, sample — tile the wall time.
	PhaseNS map[string]int64 `json:"phase_ns"`
	// Spans is the raw span list, including spans adopted from a coalesced
	// single-flight simulation (shared=true, same span IDs as the leader).
	Spans []obs.SpanRecord `json:"spans"`
}

// errorBody is the structured error envelope of every non-2xx response.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	// Code is a stable machine-readable error class: bad_request,
	// memory_out, timeout, queue_full, draining, internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Status echoes the HTTP status code.
	Status int `json:"status"`
	// RetryAfterMS suggests a backoff for retryable rejections (queue_full).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// retryAfter is the backoff hint attached to 429 responses.
const retryAfter = time.Second

// drainRetryAfter is the backoff hint attached to 503 (draining) responses:
// long enough for the orchestrator to restart or reroute, same parity as
// the 429 hint so every retryable rejection carries explicit guidance.
const drainRetryAfter = 5 * time.Second

// Handler returns the daemon's HTTP handler (also useful under httptest).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", s.route("/v1/sample", s.handleSample))
	mux.HandleFunc("/v1/circuits", s.route("/v1/circuits", s.handleCircuits))
	mux.HandleFunc("/v1/stats", s.route("/v1/stats", s.handleStats))
	mux.HandleFunc("/v1/slo", s.route("/v1/slo", s.handleSLO))
	mux.HandleFunc("/v1/jobs", s.route("/v1/jobs", s.handleJobs))
	mux.HandleFunc("/v1/jobs/", s.route("/v1/jobs/", s.handleJobByID))
	mux.HandleFunc("/healthz", s.route("/healthz", s.handleHealthz))
	mux.HandleFunc("/readyz", s.route("/readyz", s.handleReadyz))
	mux.HandleFunc(snapshotPathPrefix, s.route(snapshotPathPrefix, s.handleSnapshot))
	mux.HandleFunc("/debug/flight", s.handleFlight)
	return mux
}

// statusWriter captures the response status for the observability envelope.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Status returns the written status (200 when the handler never set one).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// route wraps an endpoint handler in the request-scoped observability
// envelope:
//
//   - a RequestTrace is opened (adopting an inbound W3C traceparent trace ID
//     when present), attached to the request context, and echoed in
//     X-Weaksim-Trace-Id on EVERY response — success or error;
//   - the per-endpoint latency histogram and the SLO burn-rate engine
//     observe the request's duration and status;
//   - last-resort panic isolation: one structured 500, a flight-recorder
//     trip with the ring dumped to disk, and the daemon keeps serving.
//
// With Config.DisableRequestTraces the trace stays nil and every rt call
// below is an allocation-free no-op (pinned by the obs zero-alloc test).
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		begin := time.Now()
		var rt *obs.RequestTrace
		if !s.cfg.DisableRequestTraces {
			rt = obs.StartRequest(r.Header.Get("traceparent"), s.recorder)
			w.Header().Set("X-Weaksim-Trace-Id", rt.ID().String())
			r = r.WithContext(obs.ContextWithTrace(r.Context(), rt))
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			if p := recover(); p != nil {
				s.cache.panics.Inc()
				s.writeError(sw, &panicError{val: p})
				s.recorder.Trip("panic", map[string]any{
					"endpoint": name, "panic": fmt.Sprint(p), "trace": rt.ID().String(),
				})
			}
			dur := time.Since(begin)
			s.epHists[name].ObserveDuration(dur)
			s.slo.observe(name, dur, sw.Status())
			rt.Finish(name, sw.Status())
		}()
		h(sw, r)
	}
}

// classify maps an error to its HTTP status and stable code, mirroring
// cmd/weaksim's exit codes (MO=3 → 507, TO=4 → 504).
func classify(err error) (int, string) {
	var pe *panicError
	switch {
	case errors.As(err, &pe):
		return http.StatusInternalServerError, "panic" // recovered worker panic; daemon keeps serving
	case errors.Is(err, dd.ErrNodeBudget), errors.Is(err, statevec.ErrMemoryOut):
		return http.StatusInsufficientStorage, "memory_out" // 507: the paper's MO
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "timeout" // 504: the paper's TO
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "cancelled"
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full" // 429 + Retry-After
	case errors.Is(err, job.ErrQuota):
		return http.StatusTooManyRequests, "quota_exceeded" // 429 + Retry-After
	case errors.Is(err, job.ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable, "draining" // 503 + Retry-After
	default:
		return http.StatusInternalServerError, "internal"
	}
}

// badRequest wraps a 400-class error so writeError can classify it.
type badRequest struct{ err error }

func (b badRequest) Error() string { return b.err.Error() }
func (b badRequest) Unwrap() error { return b.err }

func (s *Server) writeError(w http.ResponseWriter, err error) {
	s.reqErrors.Inc()
	status, code := classify(err)
	var br badRequest
	if errors.As(err, &br) {
		status, code = http.StatusBadRequest, "bad_request"
	}
	info := errorInfo{Code: code, Message: err.Error(), Status: status}
	switch status {
	case http.StatusTooManyRequests:
		info.RetryAfterMS = retryAfter.Milliseconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(retryAfter.Seconds())))
	case http.StatusServiceUnavailable:
		info.RetryAfterMS = drainRetryAfter.Milliseconds()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(drainRetryAfter.Seconds())))
	}
	writeJSON(w, status, errorBody{Error: info})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// parseRequest decodes and validates a sample request, returning the circuit
// and the resolved sampling parameters.
func (s *Server) parseRequest(r *http.Request) (*circuit.Circuit, *sampleRequest, error) {
	defer obs.StartPhase(s.cfg.Metrics, s.cfg.Tracer, obs.PhaseParse)()
	var req sampleRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, badRequest{fmt.Errorf("invalid JSON body: %w", err)}
	}
	if (req.QASM == "") == (req.Circuit == "") {
		return nil, nil, badRequest{errors.New(`exactly one of "qasm" and "circuit" must be set`)}
	}
	var circ *circuit.Circuit
	var err error
	if req.Circuit != "" {
		circ, err = algo.Generate(req.Circuit)
		if err != nil {
			return nil, nil, badRequest{err}
		}
	} else {
		circ, err = qasm.Parse(req.QASM, "request")
		if err != nil {
			return nil, nil, badRequest{err}
		}
	}
	if err := circ.Validate(); err != nil {
		return nil, nil, badRequest{err}
	}
	if circ.NQubits > s.cfg.MaxQubits {
		return nil, nil, badRequest{fmt.Errorf("circuit has %d qubits; this server accepts at most %d",
			circ.NQubits, s.cfg.MaxQubits)}
	}
	if req.Shots == 0 {
		req.Shots = s.cfg.DefaultShots
	}
	if req.Shots < 1 {
		return nil, nil, badRequest{fmt.Errorf("shots must be positive, got %d", req.Shots)}
	}
	if req.Shots > s.cfg.MaxShots {
		return nil, nil, badRequest{fmt.Errorf("shots %d exceeds the per-request cap %d", req.Shots, s.cfg.MaxShots)}
	}
	if req.Seed == nil {
		one := uint64(1)
		req.Seed = &one
	}
	if req.Workers == 0 {
		req.Workers = 1
	}
	if req.Workers < 1 || req.Workers > s.cfg.MaxSampleWorkers {
		return nil, nil, badRequest{fmt.Errorf("workers must be in [1, %d], got %d",
			s.cfg.MaxSampleWorkers, req.Workers)}
	}
	if req.TimeoutMS < 0 {
		return nil, nil, badRequest{fmt.Errorf("timeout_ms must be non-negative, got %d", req.TimeoutMS)}
	}
	return circ, &req, nil
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use POST", Status: http.StatusMethodNotAllowed}})
		return
	}
	begin := time.Now()
	s.reqTotal.Inc()
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.reqHist.ObserveDuration(time.Since(begin))
	}()
	// Panic isolation lives in the route middleware (one structured 500 plus
	// a flight-recorder trip; the daemon keeps serving).
	sp := s.cfg.Tracer.Start(obs.PhaseServe, "sample")
	rt := obs.TraceFromContext(r.Context())

	psp := rt.StartSpan(obs.PhaseParse)
	circ, req, err := s.parseRequest(r)
	psp.End(errAttrs(err))
	if err != nil {
		sp.End(map[string]any{"error": err.Error()})
		s.writeError(w, err)
		return
	}

	// Per-request deadline: the server default, lowered by timeout_ms.
	timeout := s.cfg.RequestTimeout
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := CircuitKey(circ, s.cfg.Norm, false)
	ent, cached, err := s.lookup(ctx, key, circ)
	if err != nil {
		sp.End(map[string]any{"error": err.Error(), "key": key})
		s.writeError(w, err)
		return
	}

	// Sampling: lock-free walks over the immutable snapshot, sharded across
	// the requested worker count. Counts are a pure function of
	// (circuit, seed, shots, workers) — rerunning the request reproduces
	// them bit for bit, at any cache temperature.
	stopSample := obs.StartPhase(s.cfg.Metrics, s.cfg.Tracer, obs.PhaseSample)
	ssp := rt.StartSpan(obs.PhaseSample)
	sampleStart := time.Now()
	idxCounts, _, err := core.CountsParallelContext(ctx, ent.sampler, *req.Seed, req.Shots, req.Workers)
	sampleNS := time.Since(sampleStart).Nanoseconds()
	stopSample()
	if err != nil {
		ssp.End(errAttrs(err))
		sp.End(map[string]any{"error": err.Error(), "key": key})
		s.writeError(w, err)
		return
	}
	ssp.End(map[string]any{"shots": req.Shots, "workers": req.Workers})
	s.shotsCtr.Add(uint64(req.Shots))

	counts := make(map[string]int, len(idxCounts))
	for idx, n := range idxCounts {
		counts[core.FormatBits(idx, ent.qubits)] = n
	}
	resp := sampleResponse{
		Counts:        counts,
		Qubits:        ent.qubits,
		Shots:         req.Shots,
		Seed:          *req.Seed,
		Workers:       req.Workers,
		Cached:        cached,
		CircuitKey:    key,
		SnapshotNodes: ent.sampler.Snapshot().Len(),
		SimNS:         ent.simNS,
		SampleNS:      sampleNS,
	}
	if rt != nil && r.URL.Query().Get("debug") == "1" {
		resp.Trace = &traceDebug{
			TraceID: rt.ID().String(),
			PhaseNS: rt.PhaseBreakdown(),
			Spans:   rt.Spans(),
		}
	}
	sp.End(map[string]any{"key": key, "cached": cached, "shots": req.Shots})
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use GET", Status: http.StatusMethodNotAllowed}})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"table1": algo.TableIBenchmarks(),
	})
}

// statsResponse is the GET /v1/stats body.
type statsResponse struct {
	UptimeMS      int64                    `json:"uptime_ms"`
	Requests      uint64                   `json:"requests_total"`
	Errors        uint64                   `json:"errors_total"`
	Shots         uint64                   `json:"shots_total"`
	Sims          uint64                   `json:"sims_total"`
	QueueDepth    int                      `json:"queue_depth"`
	QueueRejected uint64                   `json:"queue_rejected_total"`
	Cache         cacheStats               `json:"cache"`
	Endpoints     map[string]endpointStats `json:"endpoints"`
}

// endpointStats summarizes one endpoint's latency distribution: request
// count plus p50/p95/p99 estimated by linear interpolation within the
// serve_endpoint_* histogram buckets (obs.HistogramSnapshot.Quantile).
type endpointStats struct {
	Requests uint64  `json:"requests"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

func (s *Server) statsNow() statsResponse {
	eps := make(map[string]endpointStats, len(s.epHists))
	for path, h := range s.epHists {
		snap := h.Snapshot()
		if snap.Count == 0 {
			continue
		}
		eps[path] = endpointStats{
			Requests: snap.Count,
			P50MS:    snap.Quantile(0.50) / 1e6,
			P95MS:    snap.Quantile(0.95) / 1e6,
			P99MS:    snap.Quantile(0.99) / 1e6,
		}
	}
	return statsResponse{
		UptimeMS:      time.Since(s.start).Milliseconds(),
		Requests:      s.reqTotal.Value(),
		Errors:        s.reqErrors.Value(),
		Shots:         s.shotsCtr.Value(),
		Sims:          s.pool.sims.Value(),
		QueueDepth:    s.pool.queued(),
		QueueRejected: s.pool.rejected.Value(),
		Cache:         s.cache.stats(),
		Endpoints:     eps,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsNow())
}

// handleSLO reports the configured objectives with 5m/1h burn rates and
// remaining error budget per endpoint.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use GET", Status: http.StatusMethodNotAllowed}})
		return
	}
	writeJSON(w, http.StatusOK, s.slo.report())
}

// handleFlight streams the flight-recorder ring as JSONL, oldest record
// first — the same dump a trip writes to disk, available on demand.
func (s *Server) handleFlight(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = s.recorder.WriteJSONL(w)
}

// handleHealthz is the liveness probe: 200 for as long as the process can
// answer HTTP at all, draining or not. Restart the process when this fails.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": status,
		"stats":  s.statsNow(),
	})
}

// handleReadyz is the readiness probe: 503 from the moment a drain begins,
// so load balancers stop routing new requests here while in-flight work
// finishes. Distinct from liveness — a draining process is healthy.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}
