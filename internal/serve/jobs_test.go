package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"weaksim/internal/dd"
	"weaksim/internal/job"
)

// postJSON sends a JSON body to an arbitrary path and decodes the response.
func postJSON(t *testing.T, base, path string, body any, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("post %s: %v", path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("unmarshal %s: %v\nbody: %s", path, err, raw)
		}
	}
	return resp.StatusCode, resp.Header
}

func waitJob(t *testing.T, base, id string, pred func(job.Status) bool) job.Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st job.Status
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if pred(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting on job %s", id)
	return job.Status{}
}

func TestJobLifecycleHTTP(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, JobsDir: t.TempDir()})

	var st job.Status
	code, _ := postJSON(t, base, "/v1/jobs", map[string]any{
		"qasm": ghzQASM, "shots": 5000, "chunk_shots": 1000, "seed": 7,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st.ID == "" || st.ChunksTotal != 5 || st.CircuitKey == "" {
		t.Fatalf("submit status %+v, want ID, 5 chunks, and a circuit key", st)
	}

	done := waitJob(t, base, st.ID, func(s job.Status) bool { return s.State == job.StateCompleted })
	if done.ShotsDone != 5000 || done.ChunksDone != 5 {
		t.Errorf("completed with shots=%d chunks=%d, want 5000/5", done.ShotsDone, done.ChunksDone)
	}

	var res jobResultResponse
	if code := getJSON(t, base+"/v1/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d, want 200", code)
	}
	sum := 0
	for bits, n := range res.Counts {
		if bits != "000" && bits != "111" {
			t.Errorf("GHZ produced unexpected outcome %q", bits)
		}
		sum += n
	}
	if sum != 5000 {
		t.Errorf("result counts sum to %d, want 5000", sum)
	}

	var list struct {
		Jobs []job.Status `json:"jobs"`
	}
	if code := getJSON(t, base+"/v1/jobs", &list); code != http.StatusOK || len(list.Jobs) != 1 {
		t.Errorf("list status %d with %d jobs, want 200 with 1", code, len(list.Jobs))
	}
}

func TestJobEventsNDJSON(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var st job.Status
	code, _ := postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_4", "shots": 50_000, "chunk_shots": 5000,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	resp, err := http.Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events Content-Type %q, want application/x-ndjson", ct)
	}
	var last job.Event
	frames := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON frame %q: %v", sc.Text(), err)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("no event frames received")
	}
	if !last.Terminal || last.State != job.StateCompleted {
		t.Errorf("final frame %+v, want terminal completed", last)
	}
	if last.ChunksDone != 10 || len(last.Top) == 0 {
		t.Errorf("final frame chunks=%d top=%v, want 10 chunks with top-k", last.ChunksDone, last.Top)
	}
}

func TestJobCancelAndConflict(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, JobsDir: t.TempDir()})
	var st job.Status
	code, _ := postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_3", "shots": 100_000_000, "chunk_shots": 65536,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("delete: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	done := waitJob(t, base, st.ID, func(s job.Status) bool { return s.State.Terminal() })
	if done.State != job.StateCancelled {
		t.Fatalf("state %s after cancel, want cancelled", done.State)
	}

	// A result fetch on a non-completed job is a structured 409.
	var conflict struct {
		Error  errorInfo  `json:"error"`
		Status job.Status `json:"status"`
	}
	if code := getJSON(t, base+"/v1/jobs/"+st.ID+"/result", &conflict); code != http.StatusConflict {
		t.Fatalf("result on cancelled job: status %d, want 409", code)
	}
	if conflict.Error.Code != "not_completed" || conflict.Status.State != job.StateCancelled {
		t.Errorf("conflict body %+v, want not_completed with cancelled status", conflict)
	}
}

func TestJobQuota429(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, JobMaxPerTenant: 1})
	var first job.Status
	code, _ := postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_3", "shots": 100_000_000, "tenant": "acme",
	}, &first)
	if code != http.StatusAccepted {
		t.Fatalf("first submit status %d", code)
	}

	var body errorBody
	code, hdr := postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_3", "shots": 1000, "tenant": "acme",
	}, &body)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit status %d, want 429", code)
	}
	if body.Error.Code != "quota_exceeded" || body.Error.RetryAfterMS <= 0 {
		t.Errorf("quota error body %+v, want quota_exceeded with retry hint", body.Error)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 quota response missing Retry-After header")
	}

	// Another tenant is unaffected.
	code, _ = postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_3", "shots": 1000, "tenant": "other",
	}, nil)
	if code != http.StatusAccepted {
		t.Errorf("other-tenant submit status %d, want 202", code)
	}
}

func TestJobNotFound(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var body errorBody
	if code := getJSON(t, base+"/v1/jobs/jdoesnotexist", &body); code != http.StatusNotFound {
		t.Fatalf("unknown job status %d, want 404", code)
	}
	if body.Error.Code != "not_found" {
		t.Errorf("error code %q, want not_found", body.Error.Code)
	}
}

func TestJobBadRequests(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase, JobMaxShots: 10_000})
	cases := []map[string]any{
		{"shots": 100}, // no circuit
		{"qasm": ghzQASM, "circuit": "ghz_3", "shots": 100}, // both
		{"circuit": "ghz_3"},                                  // no shots
		{"circuit": "ghz_3", "shots": -5},                     // negative shots
		{"circuit": "ghz_3", "shots": 20_000},                 // over the job cap
		{"circuit": "ghz_3", "shots": 100, "priority": "max"}, // bad priority
		{"circuit": "nope_99", "shots": 100},                  // unknown benchmark
	}
	for i, body := range cases {
		if code, _ := postJSON(t, base, "/v1/jobs", body, nil); code != http.StatusBadRequest {
			t.Errorf("case %d (%v): status %d, want 400", i, body, code)
		}
	}
}

// TestDrainingRetryAfter pins the satellite contract: a draining daemon's
// 503 carries Retry-After guidance exactly like the 429 path does.
func TestDrainingRetryAfter(t *testing.T) {
	srv, _ := startServer(t, Config{Norm: dd.NormL2Phase})
	srv.draining.Store(true)

	body, _ := json.Marshal(map[string]any{"circuit": "ghz_3", "shots": 100})
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "5" {
		t.Errorf("Retry-After header %q, want \"5\"", got)
	}
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("unmarshal 503 body: %v", err)
	}
	if eb.Error.Code != "draining" || eb.Error.RetryAfterMS != drainRetryAfter.Milliseconds() {
		t.Errorf("503 body %+v, want draining with retry_after_ms=%d",
			eb.Error, drainRetryAfter.Milliseconds())
	}
}

// TestJobResumeAcrossRestart: a daemon killed mid-job resumes it from the
// WAL on the next start and lands on counts bit-identical to an
// uninterrupted run of the same spec.
func TestJobResumeAcrossRestart(t *testing.T) {
	spec := map[string]any{
		"qasm": ghzQASM, "shots": 1_000_000, "chunk_shots": 50_000, "seed": 11,
	}

	// Reference: uninterrupted run.
	_, refBase := startServer(t, Config{Norm: dd.NormL2Phase, JobsDir: t.TempDir()})
	var refSt job.Status
	if code, _ := postJSON(t, refBase, "/v1/jobs", spec, &refSt); code != http.StatusAccepted {
		t.Fatalf("reference submit status %d", code)
	}
	waitJob(t, refBase, refSt.ID, func(s job.Status) bool { return s.State == job.StateCompleted })
	var ref jobResultResponse
	getJSON(t, refBase+"/v1/jobs/"+refSt.ID+"/result", &ref)

	// Interrupted run: stop the daemon mid-job, restart on the same WAL.
	dir := t.TempDir()
	srv1 := New(Config{Addr: "127.0.0.1:0", Norm: dd.NormL2Phase, JobsDir: dir})
	if err := srv1.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	base1 := "http://" + srv1.Addr()
	var st job.Status
	if code, _ := postJSON(t, base1, "/v1/jobs", spec, &st); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitJob(t, base1, st.ID, func(s job.Status) bool { return s.ChunksDone >= 2 })
	if err := srv1.Close(); err != nil {
		t.Logf("close: %v", err)
	}

	srv2, base2 := startServer(t, Config{Norm: dd.NormL2Phase, JobsDir: dir})
	_ = srv2
	done := waitJob(t, base2, st.ID, func(s job.Status) bool { return s.State == job.StateCompleted })
	if done.ChunksRecovered < 2 {
		t.Errorf("recovered %d chunks, want >= 2", done.ChunksRecovered)
	}
	resampled := done.ChunksExecuted - (done.ChunksTotal - done.ChunksRecovered)
	if resampled < 0 || resampled > 1 {
		t.Errorf("re-sampled %d chunks, want <= 1 (executed=%d total=%d recovered=%d)",
			resampled, done.ChunksExecuted, done.ChunksTotal, done.ChunksRecovered)
	}
	var got jobResultResponse
	getJSON(t, base2+"/v1/jobs/"+st.ID+"/result", &got)
	if !reflect.DeepEqual(got.Counts, ref.Counts) {
		t.Errorf("resumed counts differ from uninterrupted run:\n got %v\nwant %v", got.Counts, ref.Counts)
	}
}

// TestJobSharesSnapshotWithSample: a job for a circuit already sampled
// interactively reuses the cached snapshot (no second strong simulation).
func TestJobSharesSnapshotWithSample(t *testing.T) {
	srv, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var sr sampleResponse
	if code, _ := post(t, base, map[string]any{"qasm": ghzQASM, "shots": 100}, &sr); code != http.StatusOK {
		t.Fatalf("sample status %d", code)
	}
	sims := srv.pool.sims.Value()

	var st job.Status
	if code, _ := postJSON(t, base, "/v1/jobs", map[string]any{"qasm": ghzQASM, "shots": 10_000}, &st); code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitJob(t, base, st.ID, func(s job.Status) bool { return s.State == job.StateCompleted })
	if got := srv.pool.sims.Value(); got != sims {
		t.Errorf("job triggered %d extra strong simulations, want 0 (cache hit)", got-sims)
	}
	if st.CircuitKey != sr.CircuitKey {
		t.Errorf("job key %s != sample key %s for the same circuit", st.CircuitKey, sr.CircuitKey)
	}
}

// TestJobMethodRouting pins the method/path edges of the jobs surface: 405s
// carry Allow headers, missing IDs are 400s, and result/events on unknown
// jobs are 404s.
func TestJobMethodRouting(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase})

	do := func(method, path string) (int, http.Header) {
		t.Helper()
		req, err := http.NewRequest(method, base+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	if code, hdr := do(http.MethodPut, "/v1/jobs"); code != http.StatusMethodNotAllowed || hdr.Get("Allow") == "" {
		t.Errorf("PUT /v1/jobs: status %d, Allow %q; want 405 with Allow", code, hdr.Get("Allow"))
	}
	if code, hdr := do(http.MethodPatch, "/v1/jobs/j123"); code != http.StatusMethodNotAllowed || hdr.Get("Allow") == "" {
		t.Errorf("PATCH job: status %d, Allow %q; want 405 with Allow", code, hdr.Get("Allow"))
	}
	if code, _ := do(http.MethodGet, "/v1/jobs/j123/bogus"); code != http.StatusMethodNotAllowed {
		t.Errorf("GET unknown subresource: status %d, want 405", code)
	}
	if code, _ := do(http.MethodGet, "/v1/jobs/"); code != http.StatusBadRequest {
		t.Errorf("GET with empty ID: status %d, want 400", code)
	}
	for _, sub := range []string{"", "/result", "/events"} {
		if code, _ := do(http.MethodGet, "/v1/jobs/jmissing"+sub); code != http.StatusNotFound {
			t.Errorf("GET missing job%s: status %d, want 404", sub, code)
		}
	}
	if code, _ := do(http.MethodDelete, "/v1/jobs/jmissing"); code != http.StatusNotFound {
		t.Errorf("DELETE missing job: status %d, want 404", code)
	}
}

// TestJobResultHTTP exercises the result handler's success shape directly:
// counts, qubits, shots, and seed all round-trip.
func TestJobResultHTTP(t *testing.T) {
	_, base := startServer(t, Config{Norm: dd.NormL2Phase})
	var st job.Status
	code, _ := postJSON(t, base, "/v1/jobs", map[string]any{
		"circuit": "ghz_4", "shots": 300, "chunk_shots": 100, "seed": 9,
	}, &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	waitJob(t, base, st.ID, func(s job.Status) bool { return s.State == job.StateCompleted })

	var res struct {
		JobID  string         `json:"job_id"`
		Counts map[string]int `json:"counts"`
		Qubits int            `json:"qubits"`
		Shots  int            `json:"shots"`
		Seed   uint64         `json:"seed"`
	}
	if code := getJSON(t, base+"/v1/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result status %d", code)
	}
	if res.JobID != st.ID || res.Qubits != 4 || res.Shots != 300 || res.Seed != 9 {
		t.Fatalf("result metadata %+v does not match the submit", res)
	}
	total := 0
	for bits, n := range res.Counts {
		if bits != "0000" && bits != "1111" {
			t.Fatalf("impossible GHZ outcome %q", bits)
		}
		total += n
	}
	if total != 300 {
		t.Fatalf("counts sum to %d, want 300", total)
	}
}
