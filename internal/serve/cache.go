package serve

// Snapshot LRU with single-flight admission.
//
// The cache is the heart of sampling-as-a-service: the expensive operation
// (strong simulation + freeze) runs at most once per canonical circuit, and
// every subsequent request for the same circuit is served by lock-free walks
// over the cached immutable dd.Snapshot — zero DD work, no possibility of
// hitting the node budget (the paper's "compile once, sample in O(n)"
// economics, Hillmich/Markov/Wille DAC 2020, turned into a serving contract).
//
// Capacity is accounted in bytes (dd.Snapshot.Bytes), not entries: a cached
// supremacy state can be five orders of magnitude bigger than a GHZ state,
// so entry-count bounds would be meaningless. Eviction is strict LRU.
//
// Single-flight: concurrent misses on one key elect exactly one leader; the
// leader runs the compute function while every follower (and the leader)
// waits on the flight's done channel under its own request context. Failed
// computes are never cached — the flight propagates the error to everyone
// who joined it and the next request starts a fresh flight.

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"time"

	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

// entry is one cached frozen circuit: the immutable snapshot plus the
// ready-to-walk sampler over it (FrozenSampler is safe for any number of
// concurrent walkers, so one instance serves all requests).
type entry struct {
	key     string
	sampler *core.FrozenSampler
	qubits  int
	bytes   int64
	simNS   int64 // wall-clock cost of the strong simulation + freeze that built it
}

// flight is one in-progress compute, shared by every request that missed on
// the same key while it ran.
type flight struct {
	done chan struct{} // closed when ent/err are final
	ent  *entry
	err  error

	// traceID/spans publish the leader's simulation spans (build/apply/
	// freeze) for coalesced waiters to adopt into their own traces as shared
	// spans: one freeze ran, N requests observed the same span IDs. Written
	// by the compute closure before the flight resolves; the close(done)
	// edge orders the writes before any waiter reads.
	traceID obs.TraceID
	spans   []obs.SpanRecord
}

// snapCache is the byte-bounded snapshot LRU. All methods are safe for
// concurrent use.
type snapCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List               // front = most recently used; values are *entry
	elems    map[string]*list.Element // key -> list element
	flights  map[string]*flight

	// Telemetry (nil-safe: a nil registry yields nil metrics whose methods
	// are no-ops).
	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	panics    *obs.Counter
	gBytes    *obs.Gauge
	gEntries  *obs.Gauge
	gFlights  *obs.Gauge
}

func newSnapCache(maxBytes int64, reg *obs.Registry) *snapCache {
	return &snapCache{
		maxBytes:  maxBytes,
		ll:        list.New(),
		elems:     make(map[string]*list.Element),
		flights:   make(map[string]*flight),
		hits:      reg.Counter("serve_cache_hits_total"),
		misses:    reg.Counter("serve_cache_misses_total"),
		coalesced: reg.Counter("serve_cache_coalesced_total"),
		evictions: reg.Counter("serve_cache_evictions_total"),
		panics:    reg.Counter("serve_panics_total"),
		gBytes:    reg.Gauge("serve_cache_bytes"),
		gEntries:  reg.Gauge("serve_cache_entries"),
		gFlights:  reg.Gauge("serve_cache_flights"),
	}
}

// computeFunc builds the entry for a key on a cache miss. It runs on exactly
// one goroutine per flight (the admission queue's simulation worker).
type computeFunc func() (*entry, error)

// getOrCompute returns the entry for key, serving it from the cache when
// possible. On a miss the submit function is called exactly once (across all
// concurrent callers) to schedule compute; everyone then waits for the
// flight to finish or for their own ctx to expire — a context expiry
// abandons the wait, not the flight, so a slow client cannot kill a
// simulation other clients are waiting on.
//
// The returned bool reports whether the entry was served from the cache
// without joining a flight (a true cache hit).
func (c *snapCache) getOrCompute(ctx context.Context, key string, submit func(*flight) error) (*entry, bool, error) {
	c.mu.Lock()
	if el, ok := c.elems[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*entry)
		c.mu.Unlock()
		c.hits.Inc()
		return ent, true, nil
	}
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.coalesced.Inc()
		ent, cached, err := c.wait(ctx, fl)
		if err == nil {
			// The waiter keeps its own trace ID but references the leader's
			// simulation spans (Shared=true), so a debug=1 breakdown shows
			// which strong simulation this request rode on.
			obs.TraceFromContext(ctx).AdoptShared(fl.traceID, fl.spans)
		}
		return ent, cached, err
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.gFlights.Set(int64(len(c.flights)))
	c.mu.Unlock()
	c.misses.Inc()

	if err := submit(fl); err != nil {
		// The admission queue rejected the job (queue full / draining): the
		// flight never ran. Resolve it with the rejection so concurrent
		// joiners are released, and clear it so the next request retries.
		c.finish(key, fl, nil, err)
		return nil, false, err
	}
	return c.wait(ctx, fl)
}

// panicError carries a recovered simulation panic to the waiters as an
// ordinary error (classified as HTTP 500).
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("serve: simulation panicked: %v", p.val) }

// hitSoft runs the fault hook at a point where every fault class — including
// an injected panic — degrades to the same "skip this optional step"
// outcome. Genuine panics still propagate.
func hitSoft(point string) (faulted bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(*fault.InjectedPanic); !ok {
				panic(r)
			}
			faulted = true
		}
	}()
	return fault.Hit(point) != nil
}

// run executes compute for a flight and publishes the result. Called by the
// simulation worker that dequeued the job.
//
// The recover here is load-bearing for more than the worker: run is the only
// place the flight gets resolved, so a panic that escaped past finish would
// leave fl.done open forever and hang every request coalesced onto the
// flight. Recovery must therefore happen exactly here, where the flight can
// still be failed cleanly.
func (c *snapCache) run(key string, fl *flight, compute computeFunc) {
	ent, err := func() (ent *entry, err error) {
		defer func() {
			if r := recover(); r != nil {
				c.panics.Inc()
				err = &panicError{val: r}
			}
		}()
		return compute()
	}()
	c.finish(key, fl, ent, err)
}

// finish resolves a flight: successful entries are admitted to the LRU,
// failures are propagated without caching.
func (c *snapCache) finish(key string, fl *flight, ent *entry, err error) {
	// Fault hook: any injected fault at admission — error, panic, anything —
	// degrades to "serve uncached": the entry still resolves this flight's
	// waiters (correct counts, HTTP 200), it just isn't retained. Checked
	// before taking the lock so an injected latency cannot stall concurrent
	// lookups.
	admit := err == nil && ent != nil
	if admit && hitSoft(fault.ServeCacheAdmit) {
		admit = false
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.gFlights.Set(int64(len(c.flights)))
	if admit {
		c.admit(ent)
	}
	c.mu.Unlock()
	fl.ent, fl.err = ent, err
	close(fl.done)
}

// insert admits an entry built outside any flight — the warm-restart path
// (verified snapshots loaded from disk before the listener opens) and the
// snapshot-shipping PUT (a peer's frozen snapshot installed after the full
// integrity ladder).
func (c *snapCache) insert(ent *entry) {
	c.mu.Lock()
	c.admit(ent)
	c.mu.Unlock()
}

// peek returns the resident entry for key without disturbing LRU order, or
// nil when cold. Snapshot-shipping reads use it so replication traffic does
// not distort the recency signal real sampling traffic produces.
func (c *snapCache) peek(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.elems[key]; ok {
		return el.Value.(*entry)
	}
	return nil
}

// admit inserts an entry and evicts LRU entries until the byte budget holds.
// Caller holds c.mu. Entries larger than the whole budget are still admitted
// (they evict everything else): rejecting them would make their circuits
// uncacheable and re-simulate on every request, which is strictly worse.
func (c *snapCache) admit(ent *entry) {
	if old, ok := c.elems[ent.key]; ok {
		// Two flights for one key cannot overlap, but an entry can race a
		// manual invalidation; keep the freshest.
		c.bytes -= old.Value.(*entry).bytes
		c.ll.Remove(old)
		delete(c.elems, ent.key)
	}
	c.elems[ent.key] = c.ll.PushFront(ent)
	c.bytes += ent.bytes
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		victim := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.elems, victim.key)
		c.bytes -= victim.bytes
		c.evictions.Inc()
	}
	c.gBytes.Set(c.bytes)
	c.gEntries.Set(int64(c.ll.Len()))
}

// wait blocks until the flight resolves or ctx expires.
func (c *snapCache) wait(ctx context.Context, fl *flight) (*entry, bool, error) {
	select {
	case <-fl.done:
		return fl.ent, false, fl.err
	case <-ctx.Done():
		return nil, false, fmt.Errorf("serve: abandoned wait for simulation: %w", context.Cause(ctx))
	}
}

// stats is a point-in-time cache summary for /healthz and /v1/stats.
type cacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	InFlight  int    `json:"in_flight"`
}

func (c *snapCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		MaxBytes:  c.maxBytes,
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Coalesced: c.coalesced.Value(),
		Evictions: c.evictions.Value(),
		InFlight:  len(c.flights),
	}
}

// newEntry freezes a simulated state into a cache entry.
func newEntry(key string, snap *dd.Snapshot, simElapsed time.Duration) (*entry, error) {
	sampler, err := core.NewFrozenSampler(snap)
	if err != nil {
		return nil, err
	}
	return &entry{
		key:     key,
		sampler: sampler,
		qubits:  snap.Qubits(),
		bytes:   int64(snap.Bytes()),
		simNS:   simElapsed.Nanoseconds(),
	}, nil
}
