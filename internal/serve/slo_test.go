package serve

// SLO engine unit tests: burn-rate arithmetic, window tallies, rising-edge
// flight-recorder trips, and the /v1/slo report shape.

import (
	"net/http"
	"testing"
	"time"

	"weaksim/internal/obs"
)

// newTestEngine builds an engine with an injectable clock starting at a
// fixed epoch.
func newTestEngine(slos []SLO, rec *obs.FlightRecorder) (*sloEngine, *time.Time) {
	e := newSLOEngine(slos, rec, obs.NewRegistry())
	now := time.Unix(1_700_000_000, 0)
	e.now = func() time.Time { return now }
	return e, &now
}

func testSLO() SLO {
	return SLO{
		Endpoint:           "/v1/sample",
		LatencyObjective:   10 * time.Millisecond,
		LatencyTarget:      0.99,
		AvailabilityTarget: 0.999,
	}
}

func TestSLOBurnRateMath(t *testing.T) {
	e, _ := newTestEngine([]SLO{testSLO()}, nil)

	// 98 good + 2 errors out of 100: bad fraction 0.02 against a 0.001
	// budget is burn 20; all fast, so latency burn 0.
	for i := 0; i < 98; i++ {
		e.observe("/v1/sample", time.Millisecond, http.StatusOK)
	}
	for i := 0; i < 2; i++ {
		e.observe("/v1/sample", time.Millisecond, http.StatusInternalServerError)
	}
	rep := e.report()
	if len(rep.SLOs) != 1 {
		t.Fatalf("%d slos, want 1", len(rep.SLOs))
	}
	w := rep.SLOs[0].Windows["5m"]
	if w.Requests != 100 || w.Errors != 2 || w.Slow != 0 {
		t.Fatalf("window tally %+v", w)
	}
	if got, want := w.AvailabilityBurn, 20.0; !close1e9(got, want) {
		t.Fatalf("availability burn %v, want %v", got, want)
	}
	if w.LatencyBurn != 0 {
		t.Fatalf("latency burn %v, want 0", w.LatencyBurn)
	}
	// The 1h window sees the same 100 requests.
	if h := rep.SLOs[0].Windows["1h"]; h.Requests != 100 || !close1e9(h.AvailabilityBurn, 20.0) {
		t.Fatalf("1h window %+v", h)
	}
	if got := rep.SLOs[0].AvailabilityBudgetRemaining; !close1e9(got, 1-20.0) {
		t.Fatalf("budget remaining %v", got)
	}
}

func TestSLOLatencyBurn(t *testing.T) {
	e, _ := newTestEngine([]SLO{testSLO()}, nil)
	// 4 fast + 1 slow out of 5: bad fraction 0.2 against a 0.01 budget is
	// burn 20. A 429 is shed load, not an error — availability stays clean.
	for i := 0; i < 4; i++ {
		e.observe("/v1/sample", time.Millisecond, http.StatusTooManyRequests)
	}
	e.observe("/v1/sample", 50*time.Millisecond, http.StatusOK)
	w := e.report().SLOs[0].Windows["5m"]
	if w.Errors != 0 {
		t.Fatalf("429s burned availability: %+v", w)
	}
	if !close1e9(w.LatencyBurn, 20.0) {
		t.Fatalf("latency burn %v, want 20", w.LatencyBurn)
	}
}

func TestSLOTripRisingEdgeOnly(t *testing.T) {
	rec := obs.NewFlightRecorder(64)
	e, _ := newTestEngine([]SLO{testSLO()}, rec)

	// Below threshold: 1 error in 100 is burn 10 < 14.4 — no trip.
	for i := 0; i < 99; i++ {
		e.observe("/v1/sample", time.Millisecond, http.StatusOK)
	}
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	if got := rec.Trips(); got != 0 {
		t.Fatalf("tripped below threshold: %d", got)
	}

	// Crossing to burn 20 trips exactly once; staying in breach is silent.
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	if got := rec.Trips(); got != 1 {
		t.Fatalf("trips after crossing = %d, want 1", got)
	}
	for i := 0; i < 3; i++ {
		e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	}
	if got := rec.Trips(); got != 1 {
		t.Fatalf("sustained breach re-tripped: %d", got)
	}
	if !e.report().SLOs[0].Breached {
		t.Fatal("report does not show breach")
	}

	// The trip record names the endpoint.
	found := false
	for _, r := range rec.Snapshot() {
		if r.Kind == "trip" && r.Name == "slo-breach" && r.Attrs["endpoint"] == "/v1/sample" {
			found = true
		}
	}
	if !found {
		t.Fatal("no slo-breach trip record in the ring")
	}
}

func TestSLOWindowExpiryResetsBreach(t *testing.T) {
	rec := obs.NewFlightRecorder(64)
	e, now := newTestEngine([]SLO{testSLO()}, rec)

	// Breach: 2 errors out of 2 is burn 1000.
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	if rec.Trips() != 1 {
		t.Fatalf("trips %d, want 1", rec.Trips())
	}

	// Ten minutes later the 5m window is empty; a clean request clears the
	// breach latch, so the next breach trips again.
	*now = now.Add(10 * time.Minute)
	e.observe("/v1/sample", time.Millisecond, http.StatusOK)
	rep := e.report()
	if rep.SLOs[0].Breached {
		t.Fatal("breach survived window expiry")
	}
	if w := rep.SLOs[0].Windows["5m"]; w.Requests != 1 || w.Errors != 0 {
		t.Fatalf("5m window after expiry %+v", w)
	}
	// The 1h window still remembers the old errors.
	if w := rep.SLOs[0].Windows["1h"]; w.Errors != 2 {
		t.Fatalf("1h window after expiry %+v", w)
	}
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	e.observe("/v1/sample", time.Millisecond, http.StatusBadGateway)
	if rec.Trips() != 2 {
		t.Fatalf("trips after re-breach %d, want 2", rec.Trips())
	}
}

func TestSLOEngineIgnoresUnknownAndDegenerate(t *testing.T) {
	e, _ := newTestEngine([]SLO{
		testSLO(),
		{Endpoint: "/degenerate", LatencyObjective: time.Second, LatencyTarget: 1.0, AvailabilityTarget: 1.0},
	}, nil)
	e.observe("/not-configured", time.Second, http.StatusBadGateway)
	e.observe("/degenerate", time.Second, http.StatusBadGateway)
	rep := e.report()
	if len(rep.SLOs) != 1 || rep.SLOs[0].Endpoint != "/v1/sample" {
		t.Fatalf("degenerate SLO not dropped: %+v", rep.SLOs)
	}
	// A nil engine is a no-op everywhere.
	var nilEngine *sloEngine
	nilEngine.observe("/v1/sample", time.Second, http.StatusBadGateway)
	if got := nilEngine.report(); len(got.SLOs) != 0 {
		t.Fatalf("nil engine report %+v", got)
	}
}

func TestSLOEndpointWellFormed(t *testing.T) {
	_, base := startServer(t, Config{})
	var resp sampleResponse
	if status, _ := post(t, base, sampleBody(16, 1), &resp); status != http.StatusOK {
		t.Fatalf("sample status %d", status)
	}
	var rep sloReport
	if status := getJSON(t, base+"/v1/slo", &rep); status != http.StatusOK {
		t.Fatalf("slo status %d", status)
	}
	if rep.BurnThreshold != FastBurnThreshold {
		t.Fatalf("threshold %v", rep.BurnThreshold)
	}
	if rep.WindowSeconds["5m"] != 300 || rep.WindowSeconds["1h"] != 3600 {
		t.Fatalf("windows %+v", rep.WindowSeconds)
	}
	if len(rep.SLOs) == 0 {
		t.Fatal("no SLOs in default config")
	}
	seen := map[string]bool{}
	for _, s := range rep.SLOs {
		seen[s.Endpoint] = true
		for _, win := range []string{"5m", "1h"} {
			if _, ok := s.Windows[win]; !ok {
				t.Fatalf("%s missing window %s", s.Endpoint, win)
			}
		}
		if s.LatencyObjectiveMS <= 0 || s.LatencyTarget <= 0 || s.AvailabilityTarget <= 0 {
			t.Fatalf("degenerate objectives %+v", s)
		}
	}
	if !seen["/v1/sample"] {
		t.Fatalf("default SLOs missing /v1/sample: %+v", rep.SLOs)
	}
	// The successful sample above must have been tallied.
	for _, s := range rep.SLOs {
		if s.Endpoint == "/v1/sample" && s.Windows["5m"].Requests == 0 {
			t.Fatal("sample request not observed by the SLO engine")
		}
	}
}

// close1e9 compares floats to 1e-9 relative tolerance.
func close1e9(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
