package serve

import (
	"testing"

	"weaksim/internal/circuit"
	"weaksim/internal/dd"
)

func bell(name string) *circuit.Circuit {
	return circuit.New(2, name).H(0).CX(0, 1)
}

func TestCircuitKeyIgnoresPresentation(t *testing.T) {
	a := CircuitKey(bell("one"), dd.NormL2Phase, false)
	b := CircuitKey(bell("completely-different-name"), dd.NormL2Phase, false)
	if a != b {
		t.Fatalf("circuit name changed the key: %s vs %s", a, b)
	}
	withBarrier := circuit.New(2, "x").H(0)
	withBarrier.Barrier()
	withBarrier.CX(0, 1)
	if got := CircuitKey(withBarrier, dd.NormL2Phase, false); got != a {
		t.Fatalf("barrier changed the key: %s vs %s", got, a)
	}
}

func TestCircuitKeySensitivity(t *testing.T) {
	base := CircuitKey(bell("b"), dd.NormL2Phase, false)
	cases := map[string]string{
		"different gate":  CircuitKey(circuit.New(2, "b").H(0).CZ(0, 1), dd.NormL2Phase, false),
		"different width": CircuitKey(circuit.New(3, "b").H(0).CX(0, 1), dd.NormL2Phase, false),
		"different norm":  CircuitKey(bell("b"), dd.NormLeft, false),
		"generic flag":    CircuitKey(bell("b"), dd.NormL2Phase, true),
		"different target": CircuitKey(
			circuit.New(2, "b").H(1).CX(0, 1), dd.NormL2Phase, false),
	}
	for what, key := range cases {
		if key == base {
			t.Errorf("%s did not change the key", what)
		}
	}
}

func TestCircuitKeyParamBits(t *testing.T) {
	a := CircuitKey(circuit.New(1, "p").RZ(0.1, 0), dd.NormL2Phase, false)
	b := CircuitKey(circuit.New(1, "p").RZ(0.1+1e-18, 0), dd.NormL2Phase, false)
	c := CircuitKey(circuit.New(1, "p").RZ(0.2, 0), dd.NormL2Phase, false)
	if a != b {
		// 0.1+1e-18 rounds to the same float64, so the keys must agree.
		t.Fatalf("identical float bits hashed differently")
	}
	if a == c {
		t.Fatalf("different rotation angles hashed identically")
	}
}

func TestCircuitKeyPermutation(t *testing.T) {
	p1 := circuit.New(2, "p").Permutation([]uint64{1, 0}, 1, "swap01")
	p2 := circuit.New(2, "p").Permutation([]uint64{0, 1}, 1, "ident")
	a := CircuitKey(p1, dd.NormL2Phase, false)
	b := CircuitKey(p2, dd.NormL2Phase, false)
	if a == b {
		t.Fatalf("different permutation tables hashed identically")
	}
	// Label is presentation, not semantics.
	p3 := circuit.New(2, "p").Permutation([]uint64{1, 0}, 1, "other-label")
	if got := CircuitKey(p3, dd.NormL2Phase, false); got != a {
		t.Fatalf("permutation label changed the key")
	}
}
