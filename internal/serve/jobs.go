package serve

// Batch-job HTTP surface, backed by internal/job:
//
//	POST   /v1/jobs             {qasm|circuit, shots, seed?, chunk_shots?,
//	                             priority?, tenant?} → 202 + job status
//	GET    /v1/jobs             → all known jobs, newest first
//	GET    /v1/jobs/{id}        → job status
//	GET    /v1/jobs/{id}/result → merged counts (409 until completed)
//	DELETE /v1/jobs/{id}        → cancel (idempotent)
//	GET    /v1/jobs/{id}/events → NDJSON progress frames until terminal
//
// A job's chunks resolve their frozen snapshot through the same
// lookup path as interactive /v1/sample traffic — snapshot LRU,
// single-flight, bounded simulation pool — so a batch job and a live
// request for the same circuit share one strong simulation. Transient
// admission failures (queue full, drain in progress) release the chunk back
// to the scheduler; governance verdicts (MO/TO) terminate the job.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/core"
	"weaksim/internal/job"
)

// DefaultJobMaxShots caps a single job's shot budget (distinct from the
// per-request MaxShots: jobs exist precisely to exceed it).
const DefaultJobMaxShots = 1 << 30

// jobSubmitRequest is the POST /v1/jobs body.
type jobSubmitRequest struct {
	// QASM or Circuit names the work; exactly one must be set (same contract
	// as /v1/sample).
	QASM    string `json:"qasm,omitempty"`
	Circuit string `json:"circuit,omitempty"`
	// Shots is the total sample budget (required; capped at JobMaxShots).
	Shots int `json:"shots"`
	// Seed seeds sampling; omitted means 1. Chunk i draws from
	// rng.Stream(seed, i), so results are reproducible and
	// checkpoint-stable.
	Seed *uint64 `json:"seed,omitempty"`
	// ChunkShots overrides the server's checkpoint granularity.
	ChunkShots int `json:"chunk_shots,omitempty"`
	// Priority is "high", "normal" (default), or "low".
	Priority string `json:"priority,omitempty"`
	// Tenant attributes the job for fair-share weighting and quotas
	// (default "default").
	Tenant string `json:"tenant,omitempty"`
}

// jobResultResponse is the GET /v1/jobs/{id}/result success body.
type jobResultResponse struct {
	JobID  string         `json:"job_id"`
	Counts map[string]int `json:"counts"`
	Qubits int            `json:"qubits"`
	Shots  int            `json:"shots"`
	Seed   uint64         `json:"seed"`
}

// resolveJobCircuit re-parses a job spec's circuit source. Used at submit
// (validation) and by every chunk (the spec, not a pointer, is what survives
// a restart).
func (s *Server) resolveJobCircuit(spec job.Spec) (*circuit.Circuit, error) {
	var circ *circuit.Circuit
	var err error
	if spec.Circuit != "" {
		circ, err = algo.Generate(spec.Circuit)
	} else {
		circ, err = qasm.Parse(spec.QASM, "job "+spec.ID)
	}
	if err != nil {
		return nil, err
	}
	if err := circ.Validate(); err != nil {
		return nil, err
	}
	return circ, nil
}

// jobSnapshot is the job manager's SnapshotFunc: resolve the chunk's frozen
// sampler through the shared cache/flight/pool path. Error translation is
// the contract here — the job layer must know retryable from terminal:
//
//	draining / cancelled base ctx → ErrShutdown (job parks, resumes on start)
//	admission queue full          → ErrRetry    (chunk backs off, retries)
//	circuit no longer parses      → VerdictError "bad_circuit"
//	cache key drifted since submit → VerdictError "config_changed"
//	MO / TO / anything else       → terminal verdict, unchanged
func (s *Server) jobSnapshot(ctx context.Context, spec job.Spec) (core.Sampler, error) {
	circ, err := s.resolveJobCircuit(spec)
	if err != nil {
		return nil, &job.VerdictError{Code: "bad_circuit", Err: err}
	}
	key := CircuitKey(circ, s.cfg.Norm, false)
	if key != spec.Key {
		// The WAL outlived a config change (norm, hashing codec): refusing is
		// the only answer that keeps "same job ID → same counts" true.
		return nil, &job.VerdictError{
			Code: "config_changed",
			Err: fmt.Errorf("serve: circuit key drifted: spec has %s, server computes %s",
				spec.Key, key),
		}
	}
	ctx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
	defer cancel()
	ent, _, err := s.lookup(ctx, key, circ)
	if err != nil {
		switch {
		case errors.Is(err, ErrDraining):
			return nil, fmt.Errorf("%w: %v", job.ErrShutdown, err)
		case errors.Is(err, ErrQueueFull):
			return nil, fmt.Errorf("%w: %v", job.ErrRetry, err)
		}
		return nil, err
	}
	return ent.sampler, nil
}

// handleJobs serves the /v1/jobs collection: submit and list.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleJobSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.List()})
	default:
		w.Header().Set("Allow", "GET, POST")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "use GET or POST", Status: http.StatusMethodNotAllowed}})
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, ErrDraining)
		return
	}
	var req jobSubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, badRequest{fmt.Errorf("invalid JSON body: %w", err)})
		return
	}
	if (req.QASM == "") == (req.Circuit == "") {
		s.writeError(w, badRequest{errors.New(`exactly one of "qasm" and "circuit" must be set`)})
		return
	}
	if req.Shots < 1 {
		s.writeError(w, badRequest{fmt.Errorf("shots must be positive, got %d", req.Shots)})
		return
	}
	if req.Shots > s.cfg.JobMaxShots {
		s.writeError(w, badRequest{fmt.Errorf("shots %d exceeds the per-job cap %d", req.Shots, s.cfg.JobMaxShots)})
		return
	}
	if req.ChunkShots < 0 {
		s.writeError(w, badRequest{fmt.Errorf("chunk_shots must be non-negative, got %d", req.ChunkShots)})
		return
	}
	prio, err := job.ParsePriority(req.Priority)
	if err != nil {
		s.writeError(w, badRequest{err})
		return
	}
	if req.Seed == nil {
		one := uint64(1)
		req.Seed = &one
	}
	spec := job.Spec{
		QASM:       req.QASM,
		Circuit:    req.Circuit,
		Shots:      req.Shots,
		Seed:       *req.Seed,
		ChunkShots: req.ChunkShots,
		Norm:       s.cfg.Norm.String(),
		Priority:   prio,
		Tenant:     req.Tenant,
	}
	// Validate the circuit at the door — a job that can never run should be
	// a 400 now, not a failed state later — and pin the cache key the chunks
	// will verify against.
	circ, err := s.resolveJobCircuit(spec)
	if err != nil {
		s.writeError(w, badRequest{err})
		return
	}
	if circ.NQubits > s.cfg.MaxQubits {
		s.writeError(w, badRequest{fmt.Errorf("circuit has %d qubits; this server accepts at most %d",
			circ.NQubits, s.cfg.MaxQubits)})
		return
	}
	spec.Key = CircuitKey(circ, s.cfg.Norm, false)
	spec.Qubits = circ.NQubits

	st, err := s.jobs.Submit(spec)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobByID routes /v1/jobs/{id}[/result|/events].
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		s.writeError(w, badRequest{errors.New("missing job ID")})
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		st, err := s.jobs.Get(id)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case sub == "" && r.Method == http.MethodDelete:
		st, err := s.jobs.Cancel(id)
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	case sub == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, id)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, id)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: errorInfo{
			Code: "method_not_allowed", Message: "unsupported job operation", Status: http.StatusMethodNotAllowed}})
	}
}

func (s *Server) handleJobResult(w http.ResponseWriter, id string) {
	counts, err := s.jobs.Result(id)
	if err != nil {
		if errors.Is(err, job.ErrNotCompleted) {
			// 409: the resource exists but is not in a result-bearing state;
			// the status endpoint says how far along it is.
			st, gerr := s.jobs.Get(id)
			if gerr != nil {
				s.writeError(w, gerr)
				return
			}
			writeJSON(w, http.StatusConflict, map[string]any{
				"error": errorInfo{
					Code:    "not_completed",
					Message: fmt.Sprintf("job %s is %s (%d/%d chunks)", id, st.State, st.ChunksDone, st.ChunksTotal),
					Status:  http.StatusConflict,
				},
				"status": st,
			})
			return
		}
		s.writeError(w, err)
		return
	}
	st, err := s.jobs.Get(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobResultResponse{
		JobID:  id,
		Counts: counts,
		Qubits: st.Qubits,
		Shots:  st.Shots,
		Seed:   st.Seed,
	})
}

// handleJobEvents streams NDJSON progress frames: one per chunk completion
// plus a final terminal frame, ending when the job settles or the client
// disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	ch, cancel, err := s.jobs.Subscribe(id)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer cancel()
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			if ev.Terminal {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
