package serve

// Canonical circuit hashing: the cache key of the snapshot LRU.
//
// Two requests that describe the same quantum computation must map to the
// same frozen snapshot, or the cache serves no one. The key is therefore a
// hash of the circuit's *semantics*, not its presentation:
//
//   - the circuit name is excluded (qft_16 submitted as QASM hashes the same
//     as qft_16 requested by benchmark name, provided the ops match);
//   - barriers are excluded (they are structural no-ops);
//   - everything that changes the simulated state — register width, gate
//     kinds, exact float64 parameter bits, targets, control polarity, and
//     permutation tables — is hashed, in op order;
//   - the DD normalization scheme and the generic-traversal flag are mixed
//     in, because they change the frozen snapshot's thresholds (and hence
//     the exact sample stream for a given seed), even though the Born
//     distribution is identical.
//
// The encoding is versioned (hashVersion) so a change to the scheme can
// never silently alias old keys.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"weaksim/internal/algo"
	"weaksim/internal/circuit"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/dd"
)

// hashVersion tags the canonical encoding; bump on any layout change.
const hashVersion = 1

// CircuitKey returns the canonical cache key for a circuit simulated under
// the given normalization scheme. The key is a hex-encoded SHA-256, stable
// across processes and architectures.
func CircuitKey(c *circuit.Circuit, norm dd.Norm, generic bool) string {
	h := sha256.New()
	var buf [8]byte
	wu := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	wi := func(v int) { wu(uint64(int64(v))) }
	wf := func(v float64) { wu(math.Float64bits(v)) }

	wu(uint64(hashVersion))
	wi(int(norm))
	if generic {
		wu(1)
	} else {
		wu(0)
	}
	wi(c.NQubits)
	for _, op := range c.Ops {
		switch op.Kind {
		case circuit.BarrierOp:
			continue // structural no-op: excluded from the key
		case circuit.GateOp:
			wu(0xA1) // op-kind tag
			wi(int(op.Gate.Kind))
			for _, p := range op.Gate.Params {
				wf(p)
			}
			wi(op.Target)
			wi(len(op.Controls))
			for _, ctl := range op.Controls {
				wi(ctl.Qubit)
				if ctl.Negative {
					wu(1)
				} else {
					wu(0)
				}
			}
		case circuit.PermutationOp:
			wu(0xA2)
			wi(op.PermWidth)
			wi(len(op.Perm))
			for _, p := range op.Perm {
				wu(p)
			}
			wi(len(op.Controls))
			for _, ctl := range op.Controls {
				wi(ctl.Qubit)
				if ctl.Negative {
					wu(1)
				} else {
					wu(0)
				}
			}
		default:
			// Unknown op kinds cannot be canonicalized; hash the raw kind so
			// the key at least never aliases a known circuit. Validation
			// rejects these before simulation anyway.
			wu(0xFF)
			wi(int(op.Kind))
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:])
}

// KeyForBody computes the canonical circuit key for a raw /v1/sample request
// body without simulating anything: it decodes just the circuit description
// (qasm or named benchmark), builds the circuit, and hashes it under norm.
//
// This is the cluster router's routing function — the router must place a
// request on the ring before any replica sees it, using exactly the key the
// replica's cache will use, or routing and caching would disagree about
// which backend owns a circuit. Unknown body fields are ignored here (the
// replica still enforces its full request schema); a body whose circuit
// cannot be built fails with an error the router reports as HTTP 400.
func KeyForBody(body []byte, norm dd.Norm) (string, error) {
	var req struct {
		QASM    string `json:"qasm"`
		Circuit string `json:"circuit"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		return "", fmt.Errorf("invalid JSON body: %w", err)
	}
	if (req.QASM == "") == (req.Circuit == "") {
		return "", errors.New(`exactly one of "qasm" and "circuit" must be set`)
	}
	var circ *circuit.Circuit
	var err error
	if req.Circuit != "" {
		circ, err = algo.Generate(req.Circuit)
	} else {
		circ, err = qasm.Parse(req.QASM, "request")
	}
	if err != nil {
		return "", err
	}
	if err := circ.Validate(); err != nil {
		return "", err
	}
	return CircuitKey(circ, norm, false), nil
}
