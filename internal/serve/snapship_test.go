package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"hash/crc64"
	"io"
	"net/http"
	"reflect"
	"testing"

	"weaksim/internal/snapstore"
)

// shipSnapshot moves the frame for key from one daemon to another via the
// wire endpoints, returning the PUT status.
func shipSnapshot(t *testing.T, fromBase, toBase, key string, mutate func([]byte) []byte) int {
	t.Helper()
	resp, err := http.Get(fromBase + snapshotPathPrefix + key)
	if err != nil {
		t.Fatalf("fetch snapshot: %v", err)
	}
	frame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch snapshot: status %d err %v", resp.StatusCode, err)
	}
	if mutate != nil {
		frame = mutate(frame)
	}
	req, err := http.NewRequest(http.MethodPut, toBase+snapshotPathPrefix+key, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("put snapshot: %v", err)
	}
	putResp.Body.Close()
	return putResp.StatusCode
}

// TestSnapshotShippingEndToEnd: a snapshot frozen on daemon A is fetched
// over the wire, installed on cold daemon B, and B then serves the circuit
// warm — identical counts, zero strong simulations of its own.
func TestSnapshotShippingEndToEnd(t *testing.T) {
	srvA, baseA := startServer(t, Config{})
	srvB, baseB := startServer(t, Config{})

	body := map[string]any{"qasm": ghzQASM, "shots": 256, "seed": uint64(7)}
	var cold sampleResponse
	if status, _ := post(t, baseA, body, &cold); status != http.StatusOK {
		t.Fatalf("cold sample on A: status %d", status)
	}
	key := cold.CircuitKey

	// B is cold: the shipping GET 404s there.
	resp, err := http.Get(baseB + snapshotPathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET on cold daemon: status %d, want 404", resp.StatusCode)
	}

	if status := shipSnapshot(t, baseA, baseB, key, nil); status != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", status)
	}

	var warm sampleResponse
	if status, _ := post(t, baseB, body, &warm); status != http.StatusOK {
		t.Fatalf("sample on B: status %d", status)
	}
	if !warm.Cached {
		t.Fatal("B served the shipped circuit cold")
	}
	if !reflect.DeepEqual(cold.Counts, warm.Counts) {
		t.Fatalf("shipped snapshot sampled differently:\nA: %v\nB: %v", cold.Counts, warm.Counts)
	}
	if sims := srvB.Metrics().Counter("serve_sims_total").Value(); sims != 0 {
		t.Fatalf("B ran %d strong simulations, want 0", sims)
	}
	if got := srvA.Metrics().Counter("serve_snapshot_served_total").Value(); got != 1 {
		t.Fatalf("A served %d frames, want 1", got)
	}
	if got := srvB.Metrics().Counter("serve_snapshot_installs_total").Value(); got != 1 {
		t.Fatalf("B installed %d frames, want 1", got)
	}
}

// TestSnapshotPutRejectsDamageAndVersionSkew: the PUT integrity ladder
// separates corruption (400) from a mixed-version peer (409), and neither
// pollutes the cache.
func TestSnapshotPutRejectsDamageAndVersionSkew(t *testing.T) {
	srvA, baseA := startServer(t, Config{})
	srvB, baseB := startServer(t, Config{})

	body := map[string]any{"qasm": ghzQASM, "shots": 16}
	var cold sampleResponse
	if status, _ := post(t, baseA, body, &cold); status != http.StatusOK {
		t.Fatalf("cold sample on A: status %d", status)
	}
	key := cold.CircuitKey

	crcTable := crc64.MakeTable(crc64.ECMA)
	cases := map[string]struct {
		mutate func([]byte) []byte
		status int
	}{
		"bit rot": {
			mutate: func(b []byte) []byte { b[40] ^= 0x10; return b },
			status: http.StatusBadRequest,
		},
		"truncated": {
			mutate: func(b []byte) []byte { return b[:len(b)-3] },
			status: http.StatusBadRequest,
		},
		"newer codec version": {
			mutate: func(b []byte) []byte {
				payload := b[:len(b)-8]
				binary.LittleEndian.PutUint16(payload[4:], 42)
				var trailer [8]byte
				binary.LittleEndian.PutUint64(trailer[:], crc64.Checksum(payload, crcTable))
				return append(payload, trailer[:]...)
			},
			status: http.StatusConflict,
		},
	}
	for name, tc := range cases {
		if status := shipSnapshot(t, baseA, baseB, key, tc.mutate); status != tc.status {
			t.Errorf("%s: PUT status %d, want %d", name, status, tc.status)
		}
	}
	if got := srvB.Metrics().Counter("serve_snapshot_rejects_total").Value(); got != uint64(len(cases)) {
		t.Errorf("B rejected %d frames, want %d", got, len(cases))
	}
	// Nothing was installed; B still simulates on demand.
	var onB sampleResponse
	if status, _ := post(t, baseB, body, &onB); status != http.StatusOK || onB.Cached {
		t.Fatalf("B after rejected ships: status %d cached %v, want cold 200", status, onB.Cached)
	}
	_ = srvA
}

func TestSnapshotKeyValidation(t *testing.T) {
	_, base := startServer(t, Config{})
	for _, path := range []string{
		snapshotPathPrefix,                  // empty key
		snapshotPathPrefix + "a/b",          // path escape
		snapshotPathPrefix + "k.corrupt",    // dotted
		snapshotPathPrefix + "%2e%2e%2fetc", // encoded escape
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 400 (or 404 for unroutable)", path, resp.StatusCode)
		}
	}
}

// TestKeyForBodyMatchesServedKey: the router-side key function agrees with
// the key the replica derives from a full request — the invariant that makes
// ring routing and replica caching name the same owner.
func TestKeyForBodyMatchesServedKey(t *testing.T) {
	_, base := startServer(t, Config{})
	body := map[string]any{"qasm": ghzQASM, "shots": 8, "workers": 1}
	var resp sampleResponse
	if status, _ := post(t, base, body, &resp); status != http.StatusOK {
		t.Fatalf("sample: status %d", status)
	}
	raw, _ := json.Marshal(body)
	key, err := KeyForBody(raw, 0)
	if err != nil {
		t.Fatalf("KeyForBody: %v", err)
	}
	if key != resp.CircuitKey {
		t.Fatalf("KeyForBody = %s, server used %s", key, resp.CircuitKey)
	}
	if _, err := KeyForBody([]byte(`{"shots":4}`), 0); err == nil {
		t.Fatal("KeyForBody accepted a body with no circuit")
	}
	if _, err := KeyForBody([]byte(`not json`), 0); err == nil {
		t.Fatal("KeyForBody accepted junk")
	}
	// Wire format check: the shipped frame decodes with the snapstore codec.
	get, err := http.Get(base + snapshotPathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	frame, _ := io.ReadAll(get.Body)
	get.Body.Close()
	if _, err := snapstore.Decode(frame); err != nil {
		t.Fatalf("shipped frame fails snapstore.Decode: %v", err)
	}
}
