package serve

// Request-tracing acceptance tests: every response carries a trace ID,
// inbound W3C traceparent headers are adopted, single-flight coalescing
// shares simulation spans without merging trace identities, and the debug=1
// phase breakdown accounts for a cold request's wall time.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"regexp"
	"sync"
	"testing"
	"time"

	"weaksim/internal/fault"
	"weaksim/internal/obs"
)

var traceIDRe = regexp.MustCompile(`^[0-9a-f]{32}$`)

// postTraced posts a sample request with optional extra headers and returns
// the decoded response plus the response headers.
func postTraced(t *testing.T, base string, body any, hdr map[string]string, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/sample?debug=1", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode, resp.Header
}

func TestServeTraceIDOnEveryResponse(t *testing.T) {
	_, base := startServer(t, Config{})

	// Success path.
	var resp sampleResponse
	status, hdr := postTraced(t, base, sampleBody(16, 1), nil, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	id := hdr.Get("X-Weaksim-Trace-Id")
	if !traceIDRe.MatchString(id) {
		t.Fatalf("trace header %q is not 32 lowercase hex digits", id)
	}
	if resp.Trace == nil || resp.Trace.TraceID != id {
		t.Fatalf("debug trace body %+v does not echo header %q", resp.Trace, id)
	}

	// Error path: a 400 still carries the header.
	var eb errorBody
	status, hdr = postTraced(t, base, map[string]any{"qasm": "not qasm"}, nil, &eb)
	if status != http.StatusBadRequest {
		t.Fatalf("bad request status %d", status)
	}
	if id := hdr.Get("X-Weaksim-Trace-Id"); !traceIDRe.MatchString(id) {
		t.Fatalf("error response trace header %q", id)
	}

	// GET endpoints carry it too.
	for _, path := range []string{"/v1/stats", "/v1/slo", "/healthz", "/readyz", "/v1/circuits"} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if id := resp.Header.Get("X-Weaksim-Trace-Id"); !traceIDRe.MatchString(id) {
			t.Fatalf("%s trace header %q", path, id)
		}
	}
}

func TestServeTraceparentAdoptedAndRejected(t *testing.T) {
	_, base := startServer(t, Config{})

	const inbound = "4bf92f3577b34da6a3ce929d0e0e4736"
	var resp sampleResponse
	_, hdr := postTraced(t, base, sampleBody(16, 1), map[string]string{
		"traceparent": "00-" + inbound + "-00f067aa0ba902b7-01",
	}, &resp)
	if got := hdr.Get("X-Weaksim-Trace-Id"); got != inbound {
		t.Fatalf("inbound traceparent not adopted: got %q want %q", got, inbound)
	}

	// Malformed headers mint fresh IDs instead of propagating garbage.
	for _, bad := range []string{
		"00-" + inbound + "-00f067aa0ba902b7",                     // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"01-" + inbound + "-00f067aa0ba902b7-01",                  // unknown version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
	} {
		_, hdr := postTraced(t, base, sampleBody(16, 1), map[string]string{"traceparent": bad}, nil)
		got := hdr.Get("X-Weaksim-Trace-Id")
		if !traceIDRe.MatchString(got) || got == inbound {
			t.Fatalf("malformed traceparent %q yielded trace %q", bad, got)
		}
	}
}

func TestServeDisableRequestTracesOmitsHeader(t *testing.T) {
	_, base := startServer(t, Config{DisableRequestTraces: true})
	var resp sampleResponse
	status, hdr := postTraced(t, base, sampleBody(16, 1), nil, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if id := hdr.Get("X-Weaksim-Trace-Id"); id != "" {
		t.Fatalf("disabled tracing still sent header %q", id)
	}
	if resp.Trace != nil {
		t.Fatalf("disabled tracing still echoed debug trace %+v", resp.Trace)
	}
}

// TestServeTraceParallelCoalesce pins the single-flight trace contract under
// -race: concurrent cold requests for one circuit coalesce onto one strong
// simulation; every waiter keeps its own trace ID, but all of them reference
// the SAME freeze span (identical span ID), with exactly one request — the
// leader — owning it (shared=false).
func TestServeTraceParallelCoalesce(t *testing.T) {
	srv, base := startServer(t, Config{Metrics: obs.NewRegistry(), MaxSampleWorkers: 4})
	// Slow the one simulation down so every client reliably arrives while
	// the flight is still in progress. Process-global plan: no t.Parallel.
	if err := fault.Enable("serve.sim:latency(250ms)@1", 1); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disable)

	const clients = 8
	type res struct {
		trace string
		resp  sampleResponse
	}
	results := make([]res, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp sampleResponse
			status, hdr := postTraced(t, base, sampleBody(256, 2), nil, &resp)
			if status != http.StatusOK {
				t.Errorf("client %d: status %d", i, status)
				return
			}
			results[i] = res{trace: hdr.Get("X-Weaksim-Trace-Id"), resp: resp}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if sims := srv.Metrics().Counter("serve_sims_total").Value(); sims != 1 {
		t.Fatalf("%d simulations ran, want 1 (single flight)", sims)
	}

	traces := make(map[string]bool)
	freezeSpan := ""
	owners, leaderTrace := 0, ""
	for i, r := range results {
		if traces[r.trace] {
			t.Fatalf("client %d: duplicate trace ID %s", i, r.trace)
		}
		traces[r.trace] = true
		if r.resp.Trace == nil {
			t.Fatalf("client %d: no debug trace", i)
		}
		var freeze *obs.SpanRecord
		for j := range r.resp.Trace.Spans {
			if sp := &r.resp.Trace.Spans[j]; sp.Phase == obs.PhaseFreeze && sp.Kind == "span" {
				if freeze != nil {
					t.Fatalf("client %d: multiple freeze spans", i)
				}
				freeze = sp
			}
		}
		if freeze == nil {
			t.Fatalf("client %d: no freeze span (did the request miss the flight?)", i)
		}
		if freezeSpan == "" {
			freezeSpan = freeze.SpanID
		} else if freeze.SpanID != freezeSpan {
			t.Fatalf("client %d: freeze span %s, want shared %s", i, freeze.SpanID, freezeSpan)
		}
		if !freeze.Shared {
			owners++
			leaderTrace = r.trace
		} else if freeze.OriginTrace == "" {
			t.Fatalf("client %d: shared freeze span missing origin_trace", i)
		}
	}
	if owners != 1 {
		t.Fatalf("%d requests own the freeze span, want exactly 1 leader", owners)
	}
	for i, r := range results {
		if r.trace == leaderTrace {
			continue
		}
		for _, sp := range r.resp.Trace.Spans {
			if sp.Phase == obs.PhaseFreeze && sp.OriginTrace != leaderTrace {
				t.Fatalf("client %d: origin_trace %s, want leader %s", i, sp.OriginTrace, leaderTrace)
			}
		}
	}
}

// TestServeColdRequestPhaseSumMatchesWall is the acceptance criterion for
// the breakdown's accounting: on a cold request the sequential phases —
// parse, queue, build, apply, freeze, sample — tile the request, so their
// sum must land within 5% of the client-observed wall time.
func TestServeColdRequestPhaseSumMatchesWall(t *testing.T) {
	_, base := startServer(t, Config{})

	// Warm the HTTP connection (and nothing else) so the measured request
	// pays no dial/TLS setup: a different circuit key keeps the target cold.
	var warm sampleResponse
	if status, _ := postTraced(t, base, map[string]any{"circuit": "ghz_3", "shots": 16}, nil, &warm); status != http.StatusOK {
		t.Fatalf("warmup status %d", status)
	}

	// Heavy enough that the traced phases dominate scheduling noise, yet
	// with only 2^8 distinct outcomes so the untraced response encoding
	// stays negligible: an 8-qubit QFT with a fat shot batch.
	body := map[string]any{"circuit": "qft_8", "shots": 2_000_000, "seed": 7, "workers": 1}
	var resp sampleResponse
	begin := time.Now()
	status, _ := postTraced(t, base, body, nil, &resp)
	wall := time.Since(begin).Nanoseconds()
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Cached {
		t.Fatal("request was not cold")
	}
	if resp.Trace == nil {
		t.Fatal("no debug trace")
	}
	var sum int64
	for phase, ns := range resp.Trace.PhaseNS {
		if ns < 0 {
			t.Fatalf("phase %s negative duration %d", phase, ns)
		}
		sum += ns
	}
	for _, phase := range []string{obs.PhaseParse, obs.PhaseQueue, obs.PhaseBuild, obs.PhaseApply, obs.PhaseFreeze, obs.PhaseSample} {
		if _, ok := resp.Trace.PhaseNS[phase]; !ok {
			t.Fatalf("cold breakdown missing phase %q: %v", phase, resp.Trace.PhaseNS)
		}
	}
	if sum > wall {
		t.Fatalf("phase sum %dns exceeds wall %dns", sum, wall)
	}
	if float64(sum) < 0.95*float64(wall) {
		t.Fatalf("phase sum %dns accounts for only %.1f%% of wall %dns (want >= 95%%); breakdown %v",
			sum, 100*float64(sum)/float64(wall), wall, resp.Trace.PhaseNS)
	}
}

func TestServeStatsEndpointPercentiles(t *testing.T) {
	_, base := startServer(t, Config{Metrics: obs.NewRegistry()})
	for i := 0; i < 5; i++ {
		var resp sampleResponse
		if status, _ := postTraced(t, base, sampleBody(64, 1), nil, &resp); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
	}
	var stats statsResponse
	if status := getJSON(t, base+"/v1/stats", &stats); status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	ep, ok := stats.Endpoints["/v1/sample"]
	if !ok {
		t.Fatalf("no /v1/sample endpoint stats: %+v", stats.Endpoints)
	}
	if ep.Requests != 5 {
		t.Fatalf("endpoint requests %d, want 5", ep.Requests)
	}
	if ep.P50MS <= 0 || ep.P95MS < ep.P50MS || ep.P99MS < ep.P95MS {
		t.Fatalf("percentiles not monotone positive: p50=%v p95=%v p99=%v", ep.P50MS, ep.P95MS, ep.P99MS)
	}
}

func TestServeFlightEndpointStreamsJSONL(t *testing.T) {
	_, base := startServer(t, Config{})
	var resp sampleResponse
	if status, _ := postTraced(t, base, sampleBody(16, 1), nil, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	httpResp, err := http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	if ct := httpResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	dec := json.NewDecoder(httpResp.Body)
	records, sawServe := 0, false
	for dec.More() {
		var rec obs.FlightRecord
		if err := dec.Decode(&rec); err != nil {
			t.Fatalf("record %d: %v", records, err)
		}
		if rec.Phase == obs.PhaseServe && rec.Name == "/v1/sample" {
			sawServe = true
		}
		records++
	}
	if records == 0 || !sawServe {
		t.Fatalf("flight dump has %d records, sawServe=%v", records, sawServe)
	}
}
