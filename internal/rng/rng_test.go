package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := true
	d := New(42)
	for i := 0; i < 10; i++ {
		if c.Uint64() != d.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ≈0.5", mean)
	}
}

func TestIntNAndUint64N(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("IntN(5) hit %d values in 1000 draws", len(seen))
	}
	for i := 0; i < 1000; i++ {
		if v := r.Uint64N(3); v >= 3 {
			t.Fatalf("Uint64N out of range: %d", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(11)
	child := parent.Split()
	// The child must be usable and deterministic given the parent state.
	parent2 := New(11)
	child2 := parent2.Split()
	for i := 0; i < 10; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}
