package rng

// Splittable streams for parallel sampling.
//
// The parallel shot generator shards a batch of samples across a worker
// pool; every worker needs its own random stream, and the whole batch must
// stay a pure function of the user-visible seed so runs reproduce exactly.
// Stream(seed, k) derives worker k's generator with a SplitMix64-style
// finalizer over (seed, k): the derived PCG seeds are scrambled far apart
// for adjacent k, so the streams are independent for every practical
// purpose (see TestStreamsPairwiseNonOverlapping).
//
// Two properties are load-bearing and pinned by tests:
//
//  1. Stream(seed, 0) is exactly New(seed): a single-worker parallel batch
//     consumes the same random sequence as the sequential sampler, so
//     workers=1 reproduces the pre-parallel output bit for bit.
//  2. Stream is a pure function of (seed, k): no shared state, so worker
//     streams can be constructed concurrently and a batch can be re-derived
//     without replaying the draws of other workers.

// goldenGamma is the SplitMix64 increment (2^64 / φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 finalizer (Steele, Lea, Flood 2014): a
// bijective avalanche mix used to decorrelate sequential inputs.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream returns worker k's generator for the given batch seed, a pure
// function of (seed, k). Stream(seed, 0) is identical to New(seed); streams
// for distinct k are derived through two rounds of the SplitMix64 finalizer
// and do not overlap in practice (property-tested over 10^6 draws per
// stream). k must be non-negative.
func Stream(seed uint64, k int) *RNG {
	if k < 0 {
		panic("rng: negative stream index")
	}
	if k == 0 {
		return New(seed)
	}
	// Jump far away from both the base seed and neighbouring workers:
	// advance the seed by k golden-ratio steps, then avalanche twice,
	// re-injecting k between rounds so (seed, k) pairs with equal sums
	// still separate.
	z := splitmix64(seed + uint64(k)*goldenGamma)
	z = splitmix64(z ^ uint64(k))
	return New(z)
}
