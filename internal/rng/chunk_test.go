package rng

import (
	"reflect"
	"testing"
)

// The durable batch-job executor (internal/job) splits a job's shots into
// chunks and samples chunk i under Stream(seed, i). Its resume invariant —
// a restart that replays chunks [0..k) from the WAL and samples only
// [k..n) must produce counts bit-identical to an uninterrupted [0..n) run
// — holds exactly when chunk streams are pure functions of (seed, i),
// untouched by which process consumed the earlier chunks. The property
// tests here pin that contract at the rng layer, so a future Stream change
// that introduces cross-chunk state breaks loudly and locally.

// chunkTally simulates one chunk: shots draws from Stream(seed, i) tallied
// into a small histogram, the same shape as a sampling chunk's counts.
func chunkTally(seed uint64, i, shots int) map[uint64]int {
	s := Stream(seed, i)
	counts := make(map[uint64]int)
	for j := 0; j < shots; j++ {
		counts[s.Uint64N(16)]++
	}
	return counts
}

func mergeTallies(dst map[uint64]int, parts ...map[uint64]int) map[uint64]int {
	for _, p := range parts {
		for v, n := range p {
			dst[v] += n
		}
	}
	return dst
}

// TestStreamChunkSplitResumes is the resume-boundary property test: for
// random chunk counts n and random split points k, tallying chunks [0..k)
// and then — as a fresh "restarted process" — chunks [k..n) merges
// bit-identically to one uninterrupted [0..n) pass.
func TestStreamChunkSplitResumes(t *testing.T) {
	const shots = 256
	meta := New(0xC0FFEE) // deterministic trial generator
	for trial := 0; trial < 50; trial++ {
		seed := meta.Uint64()
		n := 2 + int(meta.Uint64N(18))          // chunks per job
		k := 1 + int(meta.Uint64N(uint64(n-1))) // resume boundary, 1 <= k < n

		full := make(map[uint64]int)
		for i := 0; i < n; i++ {
			mergeTallies(full, chunkTally(seed, i, shots))
		}

		// First life: chunks [0..k). Second life, re-deriving everything
		// from (seed, chunk index) alone: chunks [k..n).
		resumed := make(map[uint64]int)
		for i := 0; i < k; i++ {
			mergeTallies(resumed, chunkTally(seed, i, shots))
		}
		for i := k; i < n; i++ {
			mergeTallies(resumed, chunkTally(seed, i, shots))
		}

		if !reflect.DeepEqual(full, resumed) {
			t.Fatalf("trial %d (seed %#x, n=%d, k=%d): resumed merge diverges from uninterrupted run\n  full    %v\n  resumed %v",
				trial, seed, n, k, full, resumed)
		}
	}
}

// TestStreamChunkDrawsOrderIndependent pins the stronger sequence-level
// fact the tally property rests on: chunk i's draw sequence is identical
// whether the chunks before it were consumed in this process, in another
// order, or never.
func TestStreamChunkDrawsOrderIndependent(t *testing.T) {
	const n, draws = 8, 64
	seq := func(seed uint64, i int) []uint64 {
		s := Stream(seed, i)
		out := make([]uint64, draws)
		for j := range out {
			out[j] = s.Uint64()
		}
		return out
	}
	for _, seed := range []uint64{1, 42, ^uint64(0)} {
		want := make([][]uint64, n)
		for i := 0; i < n; i++ { // forward pass
			want[i] = seq(seed, i)
		}
		for i := n - 1; i >= 0; i-- { // reverse pass, fresh streams
			if got := seq(seed, i); !reflect.DeepEqual(got, want[i]) {
				t.Fatalf("seed %d chunk %d: draw sequence depends on consumption order", seed, i)
			}
		}
	}
}
