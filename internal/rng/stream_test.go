package rng

import "testing"

// streamDraws is the per-stream draw count of the non-overlap property test.
// The full 10^6 draws per stream run in the default suite; -short (used by
// the race-detector pass) scales down to keep the suite fast.
func streamDraws(t *testing.T) int {
	if testing.Short() {
		return 200000
	}
	return 1000000
}

// TestStreamZeroIsSequential pins the workers=1 reproducibility guarantee:
// Stream(seed, 0) must emit exactly the sequence of New(seed).
func TestStreamZeroIsSequential(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 1 << 63, ^uint64(0)} {
		a := New(seed)
		b := Stream(seed, 0)
		for i := 0; i < 1000; i++ {
			if got, want := b.Uint64(), a.Uint64(); got != want {
				t.Fatalf("seed %d draw %d: Stream(seed,0) = %d, New(seed) = %d", seed, i, got, want)
			}
		}
	}
}

// TestStreamIsPureFunction: the same (seed, k) always yields the same
// sequence, independent of any other stream's construction or consumption.
func TestStreamIsPureFunction(t *testing.T) {
	a := Stream(7, 3)
	// Construct and burn unrelated streams in between; they must not
	// perturb a re-derived copy.
	for k := 0; k < 8; k++ {
		s := Stream(7, k)
		for i := 0; i < 100; i++ {
			s.Uint64()
		}
	}
	b := Stream(7, 3)
	first := a.Uint64()
	if got := b.Uint64(); got != first {
		t.Fatalf("Stream(7,3) not a pure function of (seed,k): %d vs %d", got, first)
	}
}

// TestStreamsPairwiseNonOverlapping: streams for distinct workers share
// (practically) no values over 10^6 draws each. Truly independent uniform
// 64-bit streams collide with probability ~n²/2^64 ≈ 5·10^-7 at this size,
// while an overlapping (shifted or identical) pair would share on the order
// of the full draw count — so a tiny threshold separates the two cleanly.
func TestStreamsPairwiseNonOverlapping(t *testing.T) {
	const workers = 4
	draws := streamDraws(t)
	seen := make(map[uint64]uint8, workers*draws)
	shared := 0
	for k := 0; k < workers; k++ {
		s := Stream(11, k)
		bit := uint8(1) << uint(k)
		for i := 0; i < draws; i++ {
			v := s.Uint64()
			if prev, ok := seen[v]; ok && prev&bit == 0 {
				shared++
			}
			seen[v] |= bit
		}
	}
	if shared > 2 {
		t.Fatalf("streams share %d values over %d draws each — overlapping streams", shared, draws)
	}
}

// TestStreamsDiffer: distinct worker indices yield distinct sequences, and
// distinct seeds yield distinct streams for the same worker.
func TestStreamsDiffer(t *testing.T) {
	same := func(a, b *RNG) bool {
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	for k := 1; k < 8; k++ {
		if same(Stream(5, 0), Stream(5, k)) {
			t.Errorf("Stream(5,0) and Stream(5,%d) coincide", k)
		}
	}
	if same(Stream(5, 2), Stream(6, 2)) {
		t.Error("Stream(5,2) and Stream(6,2) coincide")
	}
}
