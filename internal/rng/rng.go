// Package rng provides the deterministic random source used by all
// stochastic components (oracle selection, supremacy circuit generation,
// sampling). Every experiment takes an explicit seed so runs are exactly
// reproducible.
package rng

import "math/rand/v2"

// RNG is a seeded pseudo-random number generator (PCG under the hood).
// It is not safe for concurrent use.
type RNG struct {
	r *rand.Rand
}

// New returns a generator seeded with the given value.
func New(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64N returns a uniform value in [0, n).
func (g *RNG) Uint64N(n uint64) uint64 { return g.r.Uint64N(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Split derives an independent generator from this one, for components that
// need their own stream without perturbing the parent's sequence.
func (g *RNG) Split() *RNG {
	return New(g.r.Uint64())
}
