package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// This file implements Shor's order finding at the gate level — Draper
// QFT adders, Beauregard modular adders, and controlled modular
// multipliers — as an alternative to the permutation-based circuits of
// shor.go. The permutation form matches the paper's Table I qubit counts
// (3n); this form is the fully decomposed construction (Beauregard,
// "Circuit for Shor's algorithm using 2n+3 qubits", adapted without the
// semiclassical qubit recycling, so it uses 4n+2 qubits: n work, n+1
// accumulator, 1 comparison ancilla, 2n counting). It exists to validate
// the permutation substitution and to exercise deep arithmetic circuits.

// ShorAdder describes the register layout of a gate-level Shor circuit.
type ShorAdder struct {
	N, A      uint64
	n         int   // bits of N
	x         []int // work register, LSB first
	b         []int // accumulator register (n+1 qubits), LSB first
	anc       int   // comparison ancilla
	counting  []int // 2n counting qubits, LSB first
	totalQbts int
}

// NewShorAdder validates the parameters and fixes the register layout.
func NewShorAdder(N, a uint64) (*ShorAdder, error) {
	if N < 3 {
		return nil, fmt.Errorf("algo: N must be at least 3, got %d", N)
	}
	if a < 2 || a >= N {
		return nil, fmt.Errorf("algo: base a=%d must lie in [2, N)", a)
	}
	if g := GCD(a, N); g != 1 {
		return nil, fmt.Errorf("algo: base a=%d shares factor %d with N=%d", a, g, N)
	}
	n := BitLen(N)
	s := &ShorAdder{N: N, A: a, n: n}
	q := 0
	s.x = seqInts(&q, n)
	s.b = seqInts(&q, n+1)
	s.anc = q
	q++
	s.counting = seqInts(&q, 2*n)
	s.totalQbts = q
	return s, nil
}

func seqInts(next *int, count int) []int {
	out := make([]int, count)
	for i := range out {
		out[i] = *next
		*next++
	}
	return out
}

// Qubits returns the total number of qubits (4n+2).
func (s *ShorAdder) Qubits() int { return s.totalQbts }

// appendQFTReg applies the QFT (with swaps, i.e. the true DFT ordering) to
// a register given as LSB-first qubit indices. The register need not be
// contiguous.
func appendQFTReg(c *circuit.Circuit, reg []int) {
	m := len(reg)
	for i := m - 1; i >= 0; i-- {
		c.H(reg[i])
		for j := i - 1; j >= 0; j-- {
			c.CP(math.Pi/float64(uint64(1)<<uint(i-j)), reg[j], reg[i])
		}
	}
	for i := 0; i < m/2; i++ {
		c.Swap(reg[i], reg[m-1-i])
	}
}

func appendInverseQFTReg(c *circuit.Circuit, reg []int) {
	m := len(reg)
	for i := 0; i < m/2; i++ {
		c.Swap(reg[i], reg[m-1-i])
	}
	for i := 0; i < m; i++ {
		for j := 0; j < i; j++ {
			c.CP(-math.Pi/float64(uint64(1)<<uint(i-j)), reg[j], reg[i])
		}
		c.H(reg[i])
	}
}

// phiAdd adds the classical constant a to a Fourier-space register: after
// QFT, basis |y⟩ carries phase e^{2πi·b·y/2^m}; adding a multiplies in
// e^{2πi·a·y/2^m}, which factorizes into one phase gate per qubit. sign=-1
// subtracts. Controls apply to every phase gate.
func (s *ShorAdder) phiAdd(c *circuit.Circuit, reg []int, a uint64, sign float64, controls ...gate.Control) {
	m := len(reg)
	mod := float64(uint64(1) << uint(m))
	a %= uint64(1) << uint(m)
	for k := 0; k < m; k++ {
		theta := sign * 2 * math.Pi * float64(a) * float64(uint64(1)<<uint(k)) / mod
		theta = math.Mod(theta, 2*math.Pi)
		if theta == 0 {
			continue
		}
		c.Apply(gate.PhaseGate(theta), reg[k], controls...)
	}
}

// phiAddMod adds a modulo N to the Fourier-space accumulator register b
// (Beauregard's φADD(a)MOD(N) block). Preconditions: b < N, a < N, the
// ancilla is |0⟩; the controls gate the addition. Postcondition: b ←
// (b + a) mod N when controls fire, ancilla restored to |0⟩.
func (s *ShorAdder) phiAddMod(c *circuit.Circuit, a uint64, controls ...gate.Control) {
	b := s.b
	msb := b[len(b)-1]
	// 1. b += a (controlled).
	s.phiAdd(c, b, a, +1, controls...)
	// 2. b -= N (unconditional).
	s.phiAdd(c, b, s.N, -1)
	// 3. Underflow shows in the MSB after leaving Fourier space; record it.
	appendInverseQFTReg(c, b)
	c.CX(msb, s.anc)
	appendQFTReg(c, b)
	// 4. Add N back iff we underflowed.
	s.phiAdd(c, b, s.N, +1, gate.Pos(s.anc))
	// 5. Uncompute the ancilla: b ≥ a ⇔ no underflow of b -= a.
	s.phiAdd(c, b, a, -1, controls...)
	appendInverseQFTReg(c, b)
	c.X(msb)
	c.CX(msb, s.anc)
	c.X(msb)
	appendQFTReg(c, b)
	// 6. Restore b += a.
	s.phiAdd(c, b, a, +1, controls...)
}

// cMultMod implements the controlled multiply-accumulate: when the controls
// fire, b ← (b + a·x) mod N; otherwise b is untouched. x is read-only.
func (s *ShorAdder) cMultMod(c *circuit.Circuit, a uint64, controls ...gate.Control) {
	appendQFTReg(c, s.b)
	addend := a % s.N
	for j := 0; j < s.n; j++ {
		ctl := append([]gate.Control{gate.Pos(s.x[j])}, controls...)
		s.phiAddMod(c, addend, ctl...)
		addend = addend * 2 % s.N
	}
	appendInverseQFTReg(c, s.b)
}

// cMultModInverse is the exact inverse of cMultMod(a): b ← (b − a·x) mod N
// under the controls.
func (s *ShorAdder) cMultModInverse(c *circuit.Circuit, a uint64, controls ...gate.Control) {
	appendQFTReg(c, s.b)
	// Invert by adding the modular complement N − (a·2^j mod N) in reverse
	// order (phiAddMod blocks commute here because they all act in the
	// same Fourier frame, but reversing keeps this a strict circuit
	// inverse).
	addends := make([]uint64, s.n)
	v := a % s.N
	for j := 0; j < s.n; j++ {
		addends[j] = v
		v = v * 2 % s.N
	}
	for j := s.n - 1; j >= 0; j-- {
		ctl := append([]gate.Control{gate.Pos(s.x[j])}, controls...)
		s.phiAddMod(c, (s.N-addends[j])%s.N, ctl...)
	}
	appendInverseQFTReg(c, s.b)
}

// controlledUa applies the in-place modular multiplication |x⟩ → |a·x mod N⟩
// under the controls, using the accumulator b (|0⟩ before and after):
// multiply into b, swap x and b's low n qubits, then clear b with the
// inverse multiplication by a⁻¹ mod N.
func (s *ShorAdder) controlledUa(c *circuit.Circuit, a uint64, controls ...gate.Control) error {
	aInv, err := modularInverse(a%s.N, s.N)
	if err != nil {
		return err
	}
	s.cMultMod(c, a, controls...)
	for j := 0; j < s.n; j++ {
		appendControlledSwap(c, s.x[j], s.b[j], controls...)
	}
	s.cMultModInverse(c, aInv, controls...)
	return nil
}

// appendControlledSwap swaps two qubits under the given controls using the
// CX·CCX·CX identity.
func appendControlledSwap(c *circuit.Circuit, p, q int, controls ...gate.Control) {
	c.CX(q, p)
	ctl := append([]gate.Control{gate.Pos(p)}, controls...)
	c.Apply(gate.XGate, q, ctl...)
	c.CX(q, p)
}

// modularInverse returns a⁻¹ mod N via the extended Euclidean algorithm.
func modularInverse(a, N uint64) (uint64, error) {
	if GCD(a, N) != 1 {
		return 0, fmt.Errorf("algo: %d has no inverse modulo %d", a, N)
	}
	var t, newT int64 = 0, 1
	var r, newR = int64(N), int64(a)
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if t < 0 {
		t += int64(N)
	}
	return uint64(t), nil
}

// ShorGateLevel builds the complete gate-level order-finding circuit for N
// with base a: Hadamards on the counting register, one controlled U_{a^2^k}
// per counting qubit, and the inverse QFT on the counting register.
// Measuring the counting register (the top 2n bits) yields the same phase
// distribution as the permutation-based Shor circuit.
func ShorGateLevel(N, a uint64) (*circuit.Circuit, *ShorAdder, error) {
	s, err := NewShorAdder(N, a)
	if err != nil {
		return nil, nil, err
	}
	c := circuit.New(s.totalQbts, fmt.Sprintf("shor_gates_%d_%d", N, a))
	c.X(s.x[0]) // work register |1⟩
	for _, q := range s.counting {
		c.H(q)
	}
	factor := a % N
	for k := 0; k < len(s.counting); k++ {
		if err := s.controlledUa(c, factor, gate.Pos(s.counting[k])); err != nil {
			return nil, nil, err
		}
		factor = factor * factor % N
	}
	appendInverseQFTReg(c, s.counting)
	return c, s, nil
}
