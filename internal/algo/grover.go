package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
	"weaksim/internal/rng"
)

// Grover returns Grover's search over n search qubits with a random oracle
// marking a single element drawn from the seeded generator, matching the
// paper's grover_A benchmarks (A search qubits plus one oracle ancilla, so
// A+1 qubits in total). The returned marked element is the expected
// dominant measurement outcome on the search register.
func Grover(n int, seed uint64) (*circuit.Circuit, uint64) {
	r := rng.New(seed)
	marked := r.Uint64N(uint64(1) << uint(n))
	return GroverFor(n, marked), marked
}

// GroverFor returns Grover's search for a specific marked element. Qubits
// 0..n-1 form the search register; qubit n is the oracle ancilla prepared
// in |−⟩ for phase kickback.
func GroverFor(n int, marked uint64) *circuit.Circuit {
	if n < 2 {
		panic("algo: Grover needs at least two search qubits")
	}
	if marked >= uint64(1)<<uint(n) {
		panic("algo: marked element out of range")
	}
	c := circuit.New(n+1, fmt.Sprintf("grover_%d", n))
	anc := n

	// Ancilla |−⟩ and uniform superposition over the search register.
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}

	c.Barrier() // fusion boundary after state preparation
	iters := GroverIterations(n)
	for it := 0; it < iters; it++ {
		appendGroverOracle(c, n, marked)
		appendGroverDiffusion(c, n)
		c.Barrier() // each Grover iteration is a natural fusion segment
	}
	return c
}

// GroverIterations returns the optimal iteration count ⌊π/4·√(2^n)⌋ for a
// single marked element.
func GroverIterations(n int) int {
	return int(math.Floor(math.Pi / 4 * math.Sqrt(math.Pow(2, float64(n)))))
}

// appendGroverOracle flips the ancilla iff the search register equals the
// marked element: a multi-controlled X with a negative control on every
// zero bit.
func appendGroverOracle(c *circuit.Circuit, n int, marked uint64) {
	controls := make([]gate.Control, n)
	for q := 0; q < n; q++ {
		controls[q] = gate.Control{Qubit: q, Negative: marked>>uint(q)&1 == 0}
	}
	c.Apply(gate.XGate, n, controls...)
}

// appendGroverDiffusion applies the inversion about the mean on the search
// register: H^n X^n (multi-controlled Z) X^n H^n.
func appendGroverDiffusion(c *circuit.Circuit, n int) {
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		c.X(q)
	}
	controls := make([]gate.Control, n-1)
	for q := 0; q < n-1; q++ {
		controls[q] = gate.Pos(q)
	}
	c.Apply(gate.ZGate, n-1, controls...)
	for q := 0; q < n; q++ {
		c.X(q)
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
}
