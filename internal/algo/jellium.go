package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// JelliumParams configures the uniform-electron-gas Trotter circuit. The
// defaults follow the split-operator structure of Babbush et al., "Low-depth
// quantum simulation of materials" (Phys. Rev. X 8, 011044, the paper's
// reference [26]): alternating hopping (kinetic) layers along grid rows and
// columns and on-site interaction layers, repeated per Trotter step. The
// authors' exact gate lists are not public, so this generator is the
// documented substitution: it preserves the workload's character — a
// structured, moderately entangled state on 2·A² qubits whose DD is far
// smaller than 2^n but far larger than n.
type JelliumParams struct {
	// Grid is the side length A of the A×A site grid.
	Grid int
	// Steps is the number of Trotter steps (default 2).
	Steps int
	// Hopping is the kinetic amplitude t·Δτ per step (default 0.3).
	Hopping float64
	// Interaction is the on-site repulsion U·Δτ per step (default 0.7).
	Interaction float64
}

func (p *JelliumParams) setDefaults() {
	if p.Steps == 0 {
		p.Steps = 2
	}
	if p.Hopping == 0 {
		p.Hopping = 0.3
	}
	if p.Interaction == 0 {
		p.Interaction = 0.7
	}
}

// Jellium returns the jellium_AxA benchmark circuit: an A×A site grid with
// two spin orbitals per site (2·A² qubits; 8 for 2x2 and 18 for 3x3,
// matching the paper's Table I). Site (r, c) with spin s occupies qubit
// 2*(r*A+c)+s. The circuit prepares a half-filled checkerboard and applies
// Trotterized hopping and interaction layers.
func Jellium(p JelliumParams) (*circuit.Circuit, error) {
	if p.Grid < 2 {
		return nil, fmt.Errorf("algo: jellium grid must be at least 2x2, got %d", p.Grid)
	}
	p.setDefaults()
	a := p.Grid
	n := 2 * a * a
	c := circuit.New(n, fmt.Sprintf("jellium_%dx%d", a, a))

	qubit := func(r, col, spin int) int { return 2*(r*a+col) + spin }

	// Half filling: occupy the spin-up orbital of the even checkerboard
	// sites and the spin-down orbital of the odd ones.
	for r := 0; r < a; r++ {
		for col := 0; col < a; col++ {
			c.X(qubit(r, col, (r+col)%2))
		}
	}

	for step := 0; step < p.Steps; step++ {
		theta := p.Hopping
		// Horizontal hopping, both spins, staggered even/odd bonds.
		for _, parity := range []int{0, 1} {
			for r := 0; r < a; r++ {
				for col := parity; col+1 < a; col += 2 {
					for spin := 0; spin < 2; spin++ {
						AppendHopping(c, theta, qubit(r, col, spin), qubit(r, col+1, spin))
					}
				}
			}
			// Vertical hopping.
			for col := 0; col < a; col++ {
				for r := parity; r+1 < a; r += 2 {
					for spin := 0; spin < 2; spin++ {
						AppendHopping(c, theta, qubit(r, col, spin), qubit(r+1, col, spin))
					}
				}
			}
		}
		// On-site interaction between the two spins of each site, plus the
		// single-particle phase of the kinetic diagonal.
		for r := 0; r < a; r++ {
			for col := 0; col < a; col++ {
				c.CP(p.Interaction, qubit(r, col, 0), qubit(r, col, 1))
				for spin := 0; spin < 2; spin++ {
					c.P(-p.Interaction/2, qubit(r, col, spin))
				}
			}
		}
	}
	return c, nil
}

// AppendHopping applies the number-preserving hopping interaction
// exp(-iθ(XX+YY)/2) between qubits p and q: a rotation in the
// {|01⟩, |10⟩} subspace. Decomposition: CX(p→q) · CRX(2θ)(q→p) · CX(p→q).
func AppendHopping(c *circuit.Circuit, theta float64, p, q int) {
	c.CX(p, q)
	c.Apply(gate.RXGate(2*theta), p, gate.Pos(q))
	c.CX(p, q)
}

// JelliumHoppingMatrix returns the dense 4x4 matrix of AppendHopping for
// verification: identity on |00⟩ and |11⟩, an RX-style rotation on the
// {|01⟩, |10⟩} subspace.
func JelliumHoppingMatrix(theta float64) [4][4]complex128 {
	c := complex(math.Cos(theta), 0)
	s := complex(0, -math.Sin(theta))
	var m [4][4]complex128
	m[0][0] = 1
	m[3][3] = 1
	m[1][1], m[1][2] = c, s
	m[2][1], m[2][2] = s, c
	return m
}
