package algo

import (
	"math"
	"testing"
)

func TestGHZState(t *testing.T) {
	for _, n := range []int{2, 3, 6} {
		probs := runDense(t, GHZ(n))
		all := uint64(1)<<uint(n) - 1
		if math.Abs(probs[0]-0.5) > 1e-12 || math.Abs(probs[all]-0.5) > 1e-12 {
			t.Errorf("ghz_%d: p(0)=%v p(1...1)=%v", n, probs[0], probs[all])
		}
		var other float64
		for i, p := range probs {
			if uint64(i) != 0 && uint64(i) != all {
				other += p
			}
		}
		if other > 1e-12 {
			t.Errorf("ghz_%d: probability outside the two branches: %v", n, other)
		}
	}
}

func TestWState(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		probs := runDense(t, WState(n))
		want := 1 / float64(n)
		for i, p := range probs {
			if popcount(uint64(i)) == 1 {
				if math.Abs(p-want) > 1e-9 {
					t.Errorf("wstate_%d: p(%b) = %v, want %v", n, i, p, want)
				}
			} else if p > 1e-12 {
				t.Errorf("wstate_%d: weight-%d state %b has p=%v", n, popcount(uint64(i)), i, p)
			}
		}
	}
}

func TestBernsteinVaziraniRecoversSecret(t *testing.T) {
	for _, secret := range []uint64{0, 1, 0b1011, 0b11111} {
		n := 5
		probs := runDense(t, BernsteinVazirani(n, secret))
		// The input register reads the secret deterministically; the
		// ancilla is in |−⟩ so both its branches carry half the weight.
		anc := uint64(1) << uint(n)
		got := probs[secret] + probs[secret|anc]
		if math.Abs(got-1) > 1e-9 {
			t.Errorf("secret %b: probability %v, want 1", secret, got)
		}
	}
}

func TestDeutschJozsa(t *testing.T) {
	n := 6
	probs := runDense(t, DeutschJozsa(n, false, 1))
	anc := uint64(1) << uint(n)
	if p := probs[0] + probs[anc]; math.Abs(p-1) > 1e-9 {
		t.Errorf("constant oracle: p(input=0) = %v, want 1", p)
	}
	probs = runDense(t, DeutschJozsa(n, true, 1))
	if p := probs[0] + probs[anc]; p > 1e-9 {
		t.Errorf("balanced oracle: p(input=0) = %v, want 0", p)
	}
}

func TestExtraRegistryNames(t *testing.T) {
	for _, name := range []string{"ghz_8", "wstate_5", "bv_7", "dj_4_constant", "dj_4_balanced"} {
		c, err := Generate(name)
		if err != nil {
			t.Errorf("Generate(%q): %v", name, err)
			continue
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Generate(%q): %v", name, err)
		}
	}
	for _, bad := range []string{"ghz_1", "wstate_x", "bv_0", "dj_4_sideways"} {
		if _, err := Generate(bad); err == nil {
			t.Errorf("Generate(%q) should fail", bad)
		}
	}
}

func TestQPEExactPhase(t *testing.T) {
	// A phase exactly representable in t bits is estimated deterministically.
	tBits := 5
	phase := 11.0 / 32.0
	c, err := QPE(tBits, phase)
	if err != nil {
		t.Fatal(err)
	}
	probs := runDense(t, c)
	// Counting register is qubits 1..t, eigenstate qubit 0 stays |1⟩.
	want := uint64(11)<<1 | 1
	if p := probs[want]; math.Abs(p-1) > 1e-9 {
		t.Errorf("p(y=11) = %v, want 1", p)
	}
}

func TestQPEDistributionMatchesClosedForm(t *testing.T) {
	tBits := 4
	phase := 0.31831 // irrational-ish
	c, err := QPE(tBits, phase)
	if err != nil {
		t.Fatal(err)
	}
	probs := runDense(t, c)
	var sum float64
	for y := uint64(0); y < 1<<uint(tBits); y++ {
		got := probs[y<<1|1] // eigenstate bit is 1
		want := QPEProbability(tBits, phase, y)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("p(y=%d) = %v, closed form %v", y, got, want)
		}
		sum += got
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("QPE distribution sums to %v", sum)
	}
}

func TestQPEProbabilityClosedFormSums(t *testing.T) {
	for _, phase := range []float64{0.1, 0.5, 0.77, 0.123456} {
		var sum float64
		for y := uint64(0); y < 64; y++ {
			sum += QPEProbability(6, phase, y)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("phase %v: closed form sums to %v", phase, sum)
		}
	}
}

func TestQPEValidation(t *testing.T) {
	if _, err := QPE(0, 0.5); err == nil {
		t.Error("expected error for zero counting qubits")
	}
}
