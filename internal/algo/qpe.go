package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// QPE returns a quantum phase estimation circuit for the phase gate
// P(2π·phase) acting on its eigenstate |1⟩: `counting` counting qubits
// (qubits 1..counting) estimate the phase of the eigenvalue e^{2πi·phase}
// to `counting` bits; qubit 0 holds the eigenstate. Shor's circuit is this
// construction with modular multiplication in place of the phase gate.
//
// Measuring the counting register yields y with the textbook distribution
// peaked at y ≈ phase·2^counting; QPEProbability gives the exact law.
func QPE(counting int, phase float64) (*circuit.Circuit, error) {
	if counting < 1 {
		return nil, fmt.Errorf("algo: QPE needs at least one counting qubit")
	}
	c := circuit.New(counting+1, fmt.Sprintf("qpe_%d", counting))
	c.X(0) // eigenstate |1⟩ of the phase gate
	for k := 0; k < counting; k++ {
		c.H(1 + k)
	}
	for k := 0; k < counting; k++ {
		theta := 2 * math.Pi * phase * float64(uint64(1)<<uint(k))
		c.Apply(gate.PhaseGate(theta), 0, gate.Pos(1+k))
	}
	AppendInverseQFT(c, 1, counting)
	return c, nil
}

// QPEProbability returns the exact probability that phase estimation with
// the given number of counting qubits reports the integer y:
//
//	p(y) = |(1/2^t) · Σ_x e^{2πi·x·(φ − y/2^t)}|²
//	     = sin²(2^t·π·δ) / (2^{2t}·sin²(π·δ)),  δ = φ − y/2^t
//
// with the limit p = 1 when δ is an integer (exactly representable phase).
func QPEProbability(counting int, phase float64, y uint64) float64 {
	t := float64(uint64(1) << uint(counting))
	delta := phase - float64(y)/t
	// Reduce to the principal branch.
	delta -= math.Round(delta)
	s := math.Sin(math.Pi * delta)
	if math.Abs(s) < 1e-15 {
		return 1
	}
	num := math.Sin(t * math.Pi * delta)
	return (num * num) / (t * t * s * s)
}
