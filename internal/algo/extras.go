package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
	"weaksim/internal/rng"
)

// The generators in this file are not part of the paper's Table I; they are
// standard workloads useful for exercising and demonstrating the weak
// simulator (all are registered with the benchmark registry under the
// names documented on Generate).

// GHZ returns the n-qubit Greenberger-Horne-Zeilinger circuit: a Hadamard
// followed by a CNOT chain, preparing (|0...0⟩+|1...1⟩)/√2. The state's DD
// has exactly n nodes while being maximally entangled — a neat showcase of
// redundancy exploitation.
func GHZ(n int) *circuit.Circuit {
	if n < 2 {
		panic("algo: GHZ needs at least two qubits")
	}
	c := circuit.New(n, fmt.Sprintf("ghz_%d", n))
	c.H(0)
	for q := 1; q < n; q++ {
		c.CX(q-1, q)
	}
	return c
}

// WState returns the n-qubit W state circuit preparing the equal
// superposition of all weight-1 basis states. It uses the standard cascade
// of controlled rotations: qubit 0 gets the full amplitude, then each step
// splits off 1/(n-k) of the remaining weight.
func WState(n int) *circuit.Circuit {
	if n < 2 {
		panic("algo: W state needs at least two qubits")
	}
	c := circuit.New(n, fmt.Sprintf("wstate_%d", n))
	c.X(0)
	for k := 1; k < n; k++ {
		// Rotate qubit k conditioned on qubit k-1, moving amplitude
		// sqrt(1/(n-k+1))... the standard B(1/(n-k+1)) block:
		theta := 2 * math.Acos(math.Sqrt(1/float64(n-k+1)))
		c.Apply(gate.RYGate(theta), k, gate.Pos(k-1))
		c.CX(k, k-1)
	}
	return c
}

// BernsteinVazirani returns the Bernstein-Vazirani circuit for the given
// n-bit secret: one query to the phase oracle reveals the secret exactly,
// so weak simulation returns the secret as every sample. Qubits 0..n-1 are
// the input register; qubit n is the oracle ancilla in |−⟩.
func BernsteinVazirani(n int, secret uint64) *circuit.Circuit {
	if n < 1 {
		panic("algo: Bernstein-Vazirani needs at least one qubit")
	}
	if secret >= uint64(1)<<uint(n) {
		panic("algo: secret out of range")
	}
	c := circuit.New(n+1, fmt.Sprintf("bv_%d", n))
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for q := 0; q < n; q++ {
		if secret>>uint(q)&1 == 1 {
			c.CX(q, anc)
		}
	}
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}

// DeutschJozsa returns the Deutsch-Jozsa circuit for an n-bit function
// that is either constant or balanced, chosen by the flag. Balanced
// functions use a random parity mask from the seeded generator. Measuring
// all-zeros on the input register means "constant"; anything else means
// "balanced".
func DeutschJozsa(n int, balanced bool, seed uint64) *circuit.Circuit {
	if n < 1 {
		panic("algo: Deutsch-Jozsa needs at least one qubit")
	}
	kind := "constant"
	if balanced {
		kind = "balanced"
	}
	c := circuit.New(n+1, fmt.Sprintf("dj_%d_%s", n, kind))
	anc := n
	c.X(anc)
	c.H(anc)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	if balanced {
		r := rng.New(seed)
		mask := 1 + r.Uint64N(uint64(1)<<uint(n)-1) // non-zero parity mask
		for q := 0; q < n; q++ {
			if mask>>uint(q)&1 == 1 {
				c.CX(q, anc)
			}
		}
	}
	// Constant-zero oracle: identity.
	for q := 0; q < n; q++ {
		c.H(q)
	}
	return c
}
