package algo

import (
	"math"
	"testing"

	"weaksim/internal/circuit"
	"weaksim/internal/sim"
)

func runDense(t *testing.T, c *circuit.Circuit) []float64 {
	t.Helper()
	s, err := sim.NewVector(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return st.Probabilities()
}

func TestQFTOnZeroIsUniform(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		probs := runDense(t, QFT(n))
		want := 1 / float64(int(1)<<uint(n))
		for i, p := range probs {
			if math.Abs(p-want) > 1e-12 {
				t.Fatalf("qft_%d: p[%d] = %v, want %v", n, i, p, want)
			}
		}
	}
}

func TestQFTOnBasisState(t *testing.T) {
	// QFT|x⟩ must have uniform magnitudes and phases e^{2πi·x·k/2^n}.
	n := 4
	x := uint64(5)
	c := circuit.New(n, "qft_input")
	for q := 0; q < n; q++ {
		if x>>uint(q)&1 == 1 {
			c.X(q)
		}
	}
	AppendQFT(c, 0, n)
	s, _ := sim.NewVector(c, 0)
	st, _ := s.Run()
	size := uint64(1) << uint(n)
	inv := 1 / math.Sqrt(float64(size))
	for k := uint64(0); k < size; k++ {
		amp := st.Amplitude(k)
		theta := 2 * math.Pi * float64(x*k%size) / float64(size)
		wantRe, wantIm := inv*math.Cos(theta), inv*math.Sin(theta)
		if math.Abs(amp.Re-wantRe) > 1e-9 || math.Abs(amp.Im-wantIm) > 1e-9 {
			t.Fatalf("QFT|%d⟩ amplitude %d = %v, want (%v, %v)", x, k, amp, wantRe, wantIm)
		}
	}
}

func TestInverseQFTInvertsQFT(t *testing.T) {
	n := 5
	c := circuit.New(n, "qft_roundtrip")
	// Nontrivial input.
	c.X(0).X(3).H(2)
	AppendQFT(c, 0, n)
	AppendInverseQFT(c, 0, n)
	s, _ := sim.NewVector(c, 0)
	st, _ := s.Run()

	ref := circuit.New(n, "ref")
	ref.X(0).X(3).H(2)
	rs, _ := sim.NewVector(ref, 0)
	rst, _ := rs.Run()

	dev, err := st.MaxDeviationFrom(rst)
	if err != nil {
		t.Fatal(err)
	}
	if dev > 1e-9 {
		t.Errorf("QFT∘QFT⁻¹ deviates from identity by %v", dev)
	}
}

func TestGroverConcentratesOnMarked(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		c, marked := Grover(n, 42)
		probs := runDense(t, c)
		// Sum the probability of the marked search-register value over
		// both ancilla branches.
		anc := uint64(1) << uint(n)
		pMarked := probs[marked] + probs[marked|anc]
		if pMarked < 0.9 {
			t.Errorf("grover_%d: marked element probability %v, want > 0.9", n, pMarked)
		}
	}
}

func TestGroverIterations(t *testing.T) {
	if got := GroverIterations(4); got != 3 {
		t.Errorf("GroverIterations(4) = %d, want 3", got)
	}
	if got := GroverIterations(10); got != 25 {
		t.Errorf("GroverIterations(10) = %d, want 25", got)
	}
}

func TestGroverDeterministicPerSeed(t *testing.T) {
	_, m1 := Grover(6, 7)
	_, m2 := Grover(6, 7)
	if m1 != m2 {
		t.Error("same seed produced different marked elements")
	}
}

func TestNumberTheoryHelpers(t *testing.T) {
	if g := GCD(12, 18); g != 6 {
		t.Errorf("GCD(12,18) = %d", g)
	}
	if g := GCD(17, 5); g != 1 {
		t.Errorf("GCD(17,5) = %d", g)
	}
	if p := ModPow(2, 10, 1000); p != 24 {
		t.Errorf("ModPow(2,10,1000) = %d", p)
	}
	if p := ModPow(7, 0, 13); p != 1 {
		t.Errorf("ModPow(7,0,13) = %d", p)
	}
	if r, err := MultiplicativeOrder(2, 15); err != nil || r != 4 {
		t.Errorf("order(2 mod 15) = %d, %v; want 4", r, err)
	}
	if r, err := MultiplicativeOrder(7, 15); err != nil || r != 4 {
		t.Errorf("order(7 mod 15) = %d, %v; want 4", r, err)
	}
	if _, err := MultiplicativeOrder(6, 15); err == nil {
		t.Error("expected error for non-unit")
	}
	if BitLen(33) != 6 || BitLen(15) != 4 || BitLen(1) != 1 {
		t.Error("BitLen wrong")
	}
}

func TestContinuedFractions(t *testing.T) {
	// 3/8 has convergents 0/1, 1/2, 1/3, 3/8 → denominators 2, 3, 8
	// (after the leading integer part).
	dens := ContinuedFractionDenominators(3, 8, 100)
	want := map[uint64]bool{}
	for _, d := range dens {
		want[d] = true
	}
	if !want[8] {
		t.Errorf("expected denominator 8 among convergents of 3/8, got %v", dens)
	}
}

func TestShorMeasurementDistribution(t *testing.T) {
	// For N=15, a=2 the order is 4, so the counting register (8 bits)
	// concentrates on multiples of 2^8/4 = 64: y ∈ {0, 64, 128, 192}.
	c, err := Shor(15, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 12 {
		t.Fatalf("shor_15_2 has %d qubits, want 12", c.NQubits)
	}
	probs := runDense(t, c)
	work, count := ShorCountingBits(15)
	if work != 4 || count != 8 {
		t.Fatalf("ShorCountingBits(15) = %d, %d", work, count)
	}
	peaks := make(map[uint64]float64)
	for i, p := range probs {
		y := uint64(i) >> uint(work)
		peaks[y] += p
	}
	var onPeaks float64
	for _, y := range []uint64{0, 64, 128, 192} {
		onPeaks += peaks[y]
	}
	if onPeaks < 0.999 {
		t.Errorf("probability on exact phase peaks = %v, want ~1 (order divides 2^count)", onPeaks)
	}
}

func TestShorFactorExtraction(t *testing.T) {
	// y = 64 corresponds to phase 1/4 → order 4 → factors gcd(2²±1, 15).
	if f := FactorFromMeasurement(15, 2, 64, 8); f != 3 && f != 5 {
		t.Errorf("FactorFromMeasurement(15,2,64) = %d, want 3 or 5", f)
	}
	if f := FactorFromMeasurement(15, 2, 0, 8); f != 0 {
		t.Errorf("uninformative measurement should return 0, got %d", f)
	}
	// N=21, a=2: order 6; 2^3 = 8, gcd(7,21)=7, gcd(9,21)=3.
	count := 2 * BitLen(21)
	y := uint64(1) << uint(count) / 6 // nearest integer to (1/6)·2^10 (truncated)
	found := false
	for dy := uint64(0); dy <= 1; dy++ {
		if f := FactorFromMeasurement(21, 2, y+dy, count); f == 3 || f == 7 {
			found = true
		}
	}
	if !found {
		t.Error("failed to extract factor of 21 from near-peak measurement")
	}
}

func TestShorValidation(t *testing.T) {
	if _, err := Shor(15, 5); err == nil {
		t.Error("expected error for non-coprime base")
	}
	if _, err := Shor(15, 1); err == nil {
		t.Error("expected error for base 1")
	}
	if _, err := Shor(2, 1); err == nil {
		t.Error("expected error for tiny N")
	}
}

func TestJelliumStructure(t *testing.T) {
	c, err := Jellium(JelliumParams{Grid: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 8 {
		t.Errorf("jellium_2x2 has %d qubits, want 8", c.NQubits)
	}
	c3, err := Jellium(JelliumParams{Grid: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c3.NQubits != 18 {
		t.Errorf("jellium_3x3 has %d qubits, want 18", c3.NQubits)
	}
	if _, err := Jellium(JelliumParams{Grid: 1}); err == nil {
		t.Error("expected error for 1x1 grid")
	}
}

func TestJelliumConservesParticleNumber(t *testing.T) {
	// Hopping and interaction conserve the particle number: every basis
	// state with non-zero probability must have exactly A² set bits (half
	// filling).
	c, _ := Jellium(JelliumParams{Grid: 2})
	probs := runDense(t, c)
	var leaked float64
	for i, p := range probs {
		if popcount(uint64(i)) != 4 {
			leaked += p
		}
	}
	if leaked > 1e-9 {
		t.Errorf("probability leaked outside the half-filled sector: %v", leaked)
	}
}

func popcount(v uint64) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

func TestHoppingMatchesReferenceMatrix(t *testing.T) {
	theta := 0.7
	c := circuit.New(2, "hop")
	AppendHopping(c, theta, 0, 1)
	ref := JelliumHoppingMatrix(theta)
	// Apply the circuit to each basis state and compare columns.
	for col := 0; col < 4; col++ {
		cc := circuit.New(2, "hopcol")
		if col&1 != 0 {
			cc.X(0)
		}
		if col&2 != 0 {
			cc.X(1)
		}
		AppendHopping(cc, theta, 0, 1)
		s, _ := sim.NewVector(cc, 0)
		st, _ := s.Run()
		for row := 0; row < 4; row++ {
			got := st.Amplitude(uint64(row)).ToComplex128()
			want := ref[row][col]
			if d := got - want; math.Hypot(real(d), imag(d)) > 1e-9 {
				t.Errorf("hopping[%d][%d] = %v, want %v", row, col, got, want)
			}
		}
	}
}

func TestSupremacyStructure(t *testing.T) {
	c, err := Supremacy(SupremacyParams{Rows: 4, Cols: 4, Depth: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.NQubits != 16 {
		t.Errorf("4x4 grid has %d qubits, want 16", c.NQubits)
	}
	counts := c.GateCounts()
	if counts["h"] != 16 {
		t.Errorf("initial Hadamard layer has %d gates, want 16", counts["h"])
	}
	if counts["cz"] == 0 {
		t.Error("no CZ gates generated")
	}
	if counts["t"] == 0 {
		t.Error("no T gates generated")
	}
	// Determinism per seed.
	c2, _ := Supremacy(SupremacyParams{Rows: 4, Cols: 4, Depth: 10, Seed: 1})
	if len(c.Ops) != len(c2.Ops) {
		t.Error("same seed produced different circuits")
	}
	if _, err := Supremacy(SupremacyParams{Rows: 1, Cols: 4, Depth: 10}); err == nil {
		t.Error("expected error for 1-row grid")
	}
	if _, err := Supremacy(SupremacyParams{Rows: 2, Cols: 2, Depth: 0}); err == nil {
		t.Error("expected error for zero depth")
	}
}

func TestSupremacyCoversAllBonds(t *testing.T) {
	// Over 8 consecutive cycles the CZ patterns must touch every grid bond.
	c, _ := Supremacy(SupremacyParams{Rows: 3, Cols: 4, Depth: 8, Seed: 1})
	bonds := make(map[[2]int]bool)
	for _, op := range c.Ops {
		if op.Kind == circuit.GateOp && op.Gate.Name() == "z" && len(op.Controls) == 1 {
			a, b := op.Controls[0].Qubit, op.Target
			if a > b {
				a, b = b, a
			}
			bonds[[2]int{a, b}] = true
		}
	}
	wantBonds := 0
	for r := 0; r < 3; r++ {
		for col := 0; col < 4; col++ {
			if col+1 < 4 {
				wantBonds++
			}
			if r+1 < 3 {
				wantBonds++
			}
		}
	}
	if len(bonds) != wantBonds {
		t.Errorf("8 cycles cover %d distinct bonds, want all %d", len(bonds), wantBonds)
	}
}

func TestRunningExampleProbabilities(t *testing.T) {
	probs := runDense(t, RunningExample())
	want := RunningExampleProbabilities()
	for i := range want {
		if math.Abs(probs[i]-want[i]) > 1e-12 {
			t.Errorf("p[%d] = %v, want %v", i, probs[i], want[i])
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range TableIBenchmarks() {
		if name == "qft_32" || name == "qft_48" || name == "grover_35" ||
			name == "grover_25" || name == "grover_30" ||
			name == "supremacy_5x4_10" || name == "supremacy_5x5_10" ||
			name == "shor_221_4" || name == "shor_247_4" {
			continue // expensive instances are exercised by the bench harness
		}
		c, err := Generate(name)
		if err != nil {
			t.Errorf("Generate(%q): %v", name, err)
			continue
		}
		if c.Name != name {
			t.Errorf("Generate(%q) produced circuit named %q", name, c.Name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("Generate(%q): invalid circuit: %v", name, err)
		}
	}
	for _, bad := range []string{"", "nope", "qft_x", "shor_15", "jellium_2x3", "supremacy_4x4"} {
		if _, err := Generate(bad); err == nil {
			t.Errorf("Generate(%q) should fail", bad)
		}
	}
}

func TestRegistryQubitCounts(t *testing.T) {
	// Table I qubit counts must match the paper exactly.
	cases := map[string]int{
		"qft_16":           16,
		"grover_20":        21,
		"shor_33_2":        18,
		"shor_55_2":        18,
		"shor_69_4":        21,
		"jellium_2x2":      8,
		"jellium_3x3":      18,
		"supremacy_4x4_10": 16,
	}
	for name, want := range cases {
		c, err := Generate(name)
		if err != nil {
			t.Errorf("Generate(%q): %v", name, err)
			continue
		}
		if c.NQubits != want {
			t.Errorf("%s: %d qubits, want %d (paper Table I)", name, c.NQubits, want)
		}
	}
}
