package algo

import (
	"math"
	"testing"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
	"weaksim/internal/sim"
)

// runBasis applies a circuit to a basis state and returns the index of the
// (expected deterministic) output, failing if the output is not a basis
// state.
func runBasis(t *testing.T, c *circuit.Circuit, input uint64) uint64 {
	t.Helper()
	full := circuit.New(c.NQubits, c.Name+"_prep")
	for q := 0; q < c.NQubits; q++ {
		if input>>uint(q)&1 == 1 {
			full.X(q)
		}
	}
	full.Ops = append(full.Ops, c.Ops...)
	s, err := sim.NewVector(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	best, bestP := uint64(0), 0.0
	var total float64
	for i := uint64(0); i < uint64(st.Len()); i++ {
		p := st.Amplitude(i).Abs2()
		total += p
		if p > bestP {
			best, bestP = i, p
		}
	}
	if bestP < 1-1e-6 {
		t.Fatalf("output not a basis state: max p=%v (norm %v)", bestP, total)
	}
	return best
}

func TestModularInverse(t *testing.T) {
	cases := []struct{ a, n, want uint64 }{
		{2, 15, 8}, {7, 15, 13}, {3, 7, 5}, {2, 21, 11},
	}
	for _, tc := range cases {
		got, err := modularInverse(tc.a, tc.n)
		if err != nil || got != tc.want {
			t.Errorf("inverse(%d mod %d) = %d, %v; want %d", tc.a, tc.n, got, err, tc.want)
		}
		if tc.a*got%tc.n != 1 {
			t.Errorf("inverse check failed: %d·%d mod %d != 1", tc.a, got, tc.n)
		}
	}
	if _, err := modularInverse(6, 15); err == nil {
		t.Error("expected error for non-unit")
	}
}

func TestPhiAddConstant(t *testing.T) {
	// Fourier-space constant addition on a 4-qubit register: b → b+a mod 16.
	s := &ShorAdder{}
	for _, tc := range []struct{ b, a uint64 }{{0, 5}, {3, 7}, {9, 9}, {15, 1}, {6, 0}} {
		c := circuit.New(4, "phiadd")
		reg := []int{0, 1, 2, 3}
		appendQFTReg(c, reg)
		s.phiAdd(c, reg, tc.a, +1)
		appendInverseQFTReg(c, reg)
		got := runBasis(t, c, tc.b)
		want := (tc.b + tc.a) % 16
		if got != want {
			t.Errorf("b=%d a=%d: got %d, want %d", tc.b, tc.a, got, want)
		}
	}
}

func TestPhiAddSubtract(t *testing.T) {
	s := &ShorAdder{}
	c := circuit.New(3, "phisub")
	reg := []int{0, 1, 2}
	appendQFTReg(c, reg)
	s.phiAdd(c, reg, 3, -1)
	appendInverseQFTReg(c, reg)
	if got := runBasis(t, c, 1); got != (1-3+8)%8 {
		t.Errorf("1 - 3 mod 8 = %d, want 6", got)
	}
}

func TestPhiAddControlled(t *testing.T) {
	s := &ShorAdder{}
	// 3-qubit register + control on qubit 3.
	for _, ctlBit := range []uint64{0, 1} {
		c := circuit.New(4, "cphiadd")
		reg := []int{0, 1, 2}
		appendQFTReg(c, reg)
		s.phiAdd(c, reg, 5, +1, gate.Pos(3))
		appendInverseQFTReg(c, reg)
		in := uint64(2) | ctlBit<<3
		got := runBasis(t, c, in)
		want := in
		if ctlBit == 1 {
			want = (2+5)%8 | 1<<3
		}
		if got != want {
			t.Errorf("ctl=%d: got %d, want %d", ctlBit, got, want)
		}
	}
}

// adderFixture builds a ShorAdder for modular-arithmetic block tests
// without the counting register (the blocks only use x, b, anc).
func adderFixture(t *testing.T, N, a uint64) (*ShorAdder, int) {
	t.Helper()
	s, err := NewShorAdder(N, a)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks use qubits up to anc; the counting register is unused, so
	// simulate on anc+1 qubits to keep the dense backend fast.
	return s, s.anc + 1
}

func TestPhiAddMod(t *testing.T) {
	const N = 13
	s, width := adderFixture(t, N, 2)
	for _, tc := range []struct{ b, a uint64 }{{0, 5}, {7, 9}, {12, 12}, {4, 0}, {12, 1}} {
		c := circuit.New(width, "phiaddmod")
		appendQFTReg(c, s.b)
		s.phiAddMod(c, tc.a)
		appendInverseQFTReg(c, s.b)
		in := tc.b << uint(s.b[0])
		got := runBasis(t, c, in)
		want := ((tc.b + tc.a) % N) << uint(s.b[0])
		if got != want {
			t.Errorf("b=%d a=%d: got state %b, want %b", tc.b, tc.a, got, want)
		}
	}
}

func TestPhiAddModControlledOff(t *testing.T) {
	const N = 13
	s, width := adderFixture(t, N, 2)
	c := circuit.New(width, "phiaddmod_off")
	appendQFTReg(c, s.b)
	s.phiAddMod(c, 9, gate.Pos(s.x[0])) // control x0 stays 0
	appendInverseQFTReg(c, s.b)
	in := uint64(7) << uint(s.b[0])
	if got := runBasis(t, c, in); got != in {
		t.Errorf("inactive control changed the state: %b -> %b", in, got)
	}
}

func TestCMultMod(t *testing.T) {
	const N = 13
	const a = 5
	s, width := adderFixture(t, N, a)
	for _, x := range []uint64{0, 1, 3, 7, 12} {
		c := circuit.New(width, "cmult")
		s.cMultMod(c, a)
		in := x << uint(s.x[0])
		got := runBasis(t, c, in)
		wantB := a * x % N
		want := in | wantB<<uint(s.b[0])
		if got != want {
			t.Errorf("x=%d: got %b, want %b (b=%d)", x, got, want, wantB)
		}
	}
}

func TestCMultModInverseClears(t *testing.T) {
	const N = 13
	const a = 5
	s, width := adderFixture(t, N, a)
	aInv, _ := modularInverse(a, N)
	for _, x := range []uint64{1, 4, 9} {
		c := circuit.New(width, "cmult_roundtrip")
		s.cMultMod(c, a)
		// b now holds a·x; subtracting aInv·(b-register is read... the
		// inverse acts with x as multiplier, so b -= aInv·x... to clear we
		// need the swap; here verify strict inverse instead:
		s.cMultModInverse(c, a)
		in := x << uint(s.x[0])
		if got := runBasis(t, c, in); got != in {
			t.Errorf("x=%d: multiply∘inverse != identity: %b -> %b", x, in, got)
		}
		_ = aInv
	}
}

func TestControlledUa(t *testing.T) {
	const N = 13
	const a = 6
	s, width := adderFixture(t, N, a)
	for _, tc := range []struct {
		x   uint64
		ctl uint64
	}{{1, 1}, {4, 1}, {11, 1}, {7, 0}} {
		c := circuit.New(width+1, "cua")
		ctlQubit := width // extra control qubit on top
		if err := s.controlledUa(c, a, gate.Pos(ctlQubit)); err != nil {
			t.Fatal(err)
		}
		in := tc.x<<uint(s.x[0]) | tc.ctl<<uint(ctlQubit)
		got := runBasis(t, c, in)
		wantX := tc.x
		if tc.ctl == 1 {
			wantX = a * tc.x % N
		}
		want := wantX<<uint(s.x[0]) | tc.ctl<<uint(ctlQubit)
		if got != want {
			t.Errorf("x=%d ctl=%d: got %b, want %b", tc.x, tc.ctl, got, want)
		}
	}
}

func TestShorGateLevelMatchesPermutationForm(t *testing.T) {
	// The acid test: the gate-level circuit's counting-register
	// distribution must equal the permutation-based circuit's. N=15, a=7:
	// order 4.
	const N, a = 15, 7
	gateCircuit, layout, err := ShorGateLevel(N, a)
	if err != nil {
		t.Fatal(err)
	}
	if gateCircuit.NQubits != layout.Qubits() || layout.Qubits() != 4*4+2 {
		t.Fatalf("gate-level shor uses %d qubits, want 18", gateCircuit.NQubits)
	}
	gateSim, err := sim.NewDD(gateCircuit)
	if err != nil {
		t.Fatal(err)
	}
	gateState, err := gateSim.Run()
	if err != nil {
		t.Fatal(err)
	}

	permCircuit, err := Shor(N, a)
	if err != nil {
		t.Fatal(err)
	}
	permSim, err := sim.NewDD(permCircuit)
	if err != nil {
		t.Fatal(err)
	}
	permState, err := permSim.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Counting-register marginals.
	countBits := 2 * 4
	gateMarginal := make([]float64, 1<<uint(countBits))
	vec, err := gateSim.Manager().ToVector(gateState)
	if err != nil {
		t.Fatal(err)
	}
	lowBits := uint(layout.counting[0])
	for i, amp := range vec {
		gateMarginal[uint64(i)>>lowBits] += amp.Abs2()
	}
	permMarginal := make([]float64, 1<<uint(countBits))
	pvec, err := permSim.Manager().ToVector(permState)
	if err != nil {
		t.Fatal(err)
	}
	for i, amp := range pvec {
		permMarginal[uint64(i)>>4] += amp.Abs2()
	}
	for y := range gateMarginal {
		if math.Abs(gateMarginal[y]-permMarginal[y]) > 1e-6 {
			t.Fatalf("counting marginal differs at y=%d: gate-level %v vs permutation %v",
				y, gateMarginal[y], permMarginal[y])
		}
	}
}
