package algo

import (
	"fmt"
	"strconv"
	"strings"

	"weaksim/internal/circuit"
	"weaksim/internal/rng"
)

// DefaultSeed is the seed used for the randomized benchmark instances
// (Grover's oracle, supremacy gate choices) when a benchmark is built by
// name, keeping every named instance reproducible.
const DefaultSeed = 20200720 // the paper's arXiv date

// Generate builds a benchmark circuit from a Table I-style name:
//
//	qft_A             QFT on A qubits
//	grover_A          Grover on A search qubits (A+1 total), random oracle
//	shor_N_a          Shor order finding for N with base a (3·bits(N) qubits)
//	jellium_AxA       electron-gas Trotter circuit on an A×A grid (2A² qubits)
//	supremacy_AxB_D   GRCS-style random circuit on an A×B grid, depth D
//	running_example   the paper's Fig. 2 running example
//	figure1           the paper's Fig. 1 circuit
//
// Beyond the paper's Table I families, these standard workloads are also
// available: ghz_A, wstate_A, bv_A (Bernstein-Vazirani with a random
// secret), dj_A_constant and dj_A_balanced (Deutsch-Jozsa), and
// shor_gates_N_a (gate-level Shor with Draper/Beauregard modular
// arithmetic on 4·bits(N)+2 qubits).
func Generate(name string) (*circuit.Circuit, error) {
	switch {
	case name == "running_example":
		return RunningExample(), nil
	case name == "figure1":
		return Figure1Example(), nil
	case strings.HasPrefix(name, "ghz_"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "ghz_"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("algo: bad ghz benchmark %q", name)
		}
		return GHZ(n), nil
	case strings.HasPrefix(name, "wstate_"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "wstate_"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("algo: bad wstate benchmark %q", name)
		}
		return WState(n), nil
	case strings.HasPrefix(name, "bv_"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "bv_"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("algo: bad bv benchmark %q", name)
		}
		secret := rng.New(DefaultSeed).Uint64N(uint64(1) << uint(n))
		return BernsteinVazirani(n, secret), nil
	case strings.HasPrefix(name, "dj_"):
		parts := strings.Split(strings.TrimPrefix(name, "dj_"), "_")
		if len(parts) != 2 || (parts[1] != "constant" && parts[1] != "balanced") {
			return nil, fmt.Errorf("algo: bad dj benchmark %q (want dj_A_constant or dj_A_balanced)", name)
		}
		n, err := strconv.Atoi(parts[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("algo: bad dj benchmark %q", name)
		}
		return DeutschJozsa(n, parts[1] == "balanced", DefaultSeed), nil
	case strings.HasPrefix(name, "qft_"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "qft_"))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("algo: bad qft benchmark %q", name)
		}
		return QFT(n), nil
	case strings.HasPrefix(name, "grover_"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "grover_"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("algo: bad grover benchmark %q", name)
		}
		c, _ := Grover(n, DefaultSeed)
		return c, nil
	case strings.HasPrefix(name, "shor_gates_"):
		parts := strings.Split(strings.TrimPrefix(name, "shor_gates_"), "_")
		if len(parts) != 2 {
			return nil, fmt.Errorf("algo: bad shor_gates benchmark %q (want shor_gates_N_a)", name)
		}
		n, err1 := strconv.ParseUint(parts[0], 10, 64)
		a, err2 := strconv.ParseUint(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("algo: bad shor_gates benchmark %q", name)
		}
		c, _, err := ShorGateLevel(n, a)
		return c, err
	case strings.HasPrefix(name, "shor_"):
		parts := strings.Split(strings.TrimPrefix(name, "shor_"), "_")
		if len(parts) != 2 {
			return nil, fmt.Errorf("algo: bad shor benchmark %q (want shor_N_a)", name)
		}
		n, err1 := strconv.ParseUint(parts[0], 10, 64)
		a, err2 := strconv.ParseUint(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("algo: bad shor benchmark %q", name)
		}
		return Shor(n, a)
	case strings.HasPrefix(name, "jellium_"):
		dims := strings.Split(strings.TrimPrefix(name, "jellium_"), "x")
		if len(dims) != 2 || dims[0] != dims[1] {
			return nil, fmt.Errorf("algo: bad jellium benchmark %q (want jellium_AxA)", name)
		}
		a, err := strconv.Atoi(dims[0])
		if err != nil {
			return nil, fmt.Errorf("algo: bad jellium benchmark %q", name)
		}
		return Jellium(JelliumParams{Grid: a})
	case strings.HasPrefix(name, "supremacy_"):
		rest := strings.TrimPrefix(name, "supremacy_")
		parts := strings.Split(rest, "_")
		if len(parts) != 2 {
			return nil, fmt.Errorf("algo: bad supremacy benchmark %q (want supremacy_AxB_D)", name)
		}
		dims := strings.Split(parts[0], "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("algo: bad supremacy benchmark %q", name)
		}
		rows, err1 := strconv.Atoi(dims[0])
		cols, err2 := strconv.Atoi(dims[1])
		depth, err3 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("algo: bad supremacy benchmark %q", name)
		}
		return Supremacy(SupremacyParams{Rows: rows, Cols: cols, Depth: depth, Seed: DefaultSeed})
	default:
		return nil, fmt.Errorf("algo: unknown benchmark %q", name)
	}
}

// TableIBenchmarks lists the 17 rows of the paper's Table I in order.
func TableIBenchmarks() []string {
	return []string{
		"qft_16", "qft_32", "qft_48",
		"grover_20", "grover_25", "grover_30", "grover_35",
		"shor_33_2", "shor_55_2", "shor_69_4", "shor_221_4", "shor_247_4",
		"jellium_2x2", "jellium_3x3",
		"supremacy_4x4_10", "supremacy_5x4_10", "supremacy_5x5_10",
	}
}
