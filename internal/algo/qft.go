// Package algo generates the benchmark circuits of the paper's empirical
// validation (Section V): the Quantum Fourier Transformation, Grover's
// search with a random oracle, Shor's algorithm, uniform-electron-gas
// (jellium) Trotter circuits, and GRCS-style quantum-supremacy circuits.
// A registry maps the paper's benchmark names (e.g. "shor_33_2") to
// generators.
package algo

import (
	"fmt"
	"math"

	"weaksim/internal/circuit"
)

// QFT returns the quantum Fourier transformation on n qubits, applied to
// the |0...0⟩ input as in the paper's qft_A benchmarks: a cascade of
// Hadamard and controlled-phase gates followed by the qubit-reversal swaps.
func QFT(n int) *circuit.Circuit {
	c := circuit.New(n, fmt.Sprintf("qft_%d", n))
	AppendQFT(c, 0, n)
	return c
}

// AppendQFT appends the QFT on the qubit range [lo, lo+width) to an
// existing circuit, including the final qubit-reversal swaps.
func AppendQFT(c *circuit.Circuit, lo, width int) {
	for i := width - 1; i >= 0; i-- {
		q := lo + i
		c.H(q)
		for j := i - 1; j >= 0; j-- {
			// Controlled phase by π/2^(i-j).
			c.CP(math.Pi/float64(uint64(1)<<uint(i-j)), lo+j, q)
		}
	}
	for i := 0; i < width/2; i++ {
		c.Swap(lo+i, lo+width-1-i)
	}
}

// AppendInverseQFT appends the inverse QFT on [lo, lo+width): the reversal
// swaps followed by the reversed cascade with negated angles.
func AppendInverseQFT(c *circuit.Circuit, lo, width int) {
	for i := 0; i < width/2; i++ {
		c.Swap(lo+i, lo+width-1-i)
	}
	for i := 0; i < width; i++ {
		q := lo + i
		for j := 0; j < i; j++ {
			c.CP(-math.Pi/float64(uint64(1)<<uint(i-j)), lo+j, q)
		}
		c.H(q)
	}
}
