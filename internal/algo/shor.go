package algo

import (
	"fmt"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
)

// Shor returns the order-finding circuit of Shor's algorithm for
// factorizing N with coprime base a, matching the paper's shor_N_a
// benchmarks. With n = bits(N) the circuit uses 3n qubits: the work
// register on qubits 0..n-1 (initialized to |1⟩) and the 2n-qubit counting
// register on qubits n..3n-1. Modular exponentiation is realized as a
// cascade of controlled modular-multiplication permutations (|x⟩ →
// |x·a^{2^k} mod N⟩ for x < N, identity above N), followed by the inverse
// QFT on the counting register. Measuring the counting register yields
// phase estimates s/r of the order r of a modulo N.
func Shor(N, a uint64) (*circuit.Circuit, error) {
	if N < 3 {
		return nil, fmt.Errorf("algo: N must be at least 3, got %d", N)
	}
	if a < 2 || a >= N {
		return nil, fmt.Errorf("algo: base a=%d must lie in [2, N)", a)
	}
	if g := GCD(a, N); g != 1 {
		return nil, fmt.Errorf("algo: base a=%d shares factor %d with N=%d", a, g, N)
	}
	n := BitLen(N)
	c := circuit.New(3*n, fmt.Sprintf("shor_%d_%d", N, a))

	// Work register |1⟩.
	c.X(0)
	// Counting register in uniform superposition.
	for k := 0; k < 2*n; k++ {
		c.H(n + k)
	}
	// Controlled multiplications by a^(2^k) mod N.
	factor := a % N
	for k := 0; k < 2*n; k++ {
		perm := modMulPermutation(factor, N, n)
		label := fmt.Sprintf("modmul_%d^2^%d_mod_%d", a, k, N)
		c.Permutation(perm, n, label, gate.Pos(n+k))
		factor = factor * factor % N
	}
	// Inverse QFT on the counting register.
	AppendInverseQFT(c, n, 2*n)
	return c, nil
}

// modMulPermutation builds the permutation x → x·f mod N on the 2^width
// work-register states, acting as the identity on states ≥ N. It is a
// bijection because f is a unit modulo N.
func modMulPermutation(f, N uint64, width int) []uint64 {
	size := uint64(1) << uint(width)
	perm := make([]uint64, size)
	for x := uint64(0); x < size; x++ {
		if x < N {
			perm[x] = x * f % N
		} else {
			perm[x] = x
		}
	}
	return perm
}

// ShorCountingBits returns the number of counting-register bits for N,
// which is also the bit offset of the counting register in the circuit.
func ShorCountingBits(N uint64) (workBits, countBits int) {
	n := BitLen(N)
	return n, 2 * n
}

// BitLen returns the number of bits needed to represent v.
func BitLen(v uint64) int {
	n := 0
	for ; v > 0; v >>= 1 {
		n++
	}
	return n
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ModPow returns base^exp mod m using binary exponentiation.
func ModPow(base, exp, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = result * base % m
		}
		base = base * base % m
		exp >>= 1
	}
	return result
}

// MultiplicativeOrder returns the order of a modulo N: the smallest r ≥ 1
// with a^r ≡ 1 (mod N). a must be coprime to N.
func MultiplicativeOrder(a, N uint64) (uint64, error) {
	if GCD(a, N) != 1 {
		return 0, fmt.Errorf("algo: %d is not a unit modulo %d", a, N)
	}
	v := a % N
	for r := uint64(1); r <= N; r++ {
		if v == 1 {
			return r, nil
		}
		v = v * a % N
	}
	return 0, fmt.Errorf("algo: no order found for %d mod %d", a, N)
}

// ContinuedFractionDenominators returns the denominators of the continued-
// fraction convergents of num/den, capped at maxDen. Shor's classical
// post-processing scans them for the order r.
func ContinuedFractionDenominators(num, den, maxDen uint64) []uint64 {
	var dens []uint64
	// Convergent recurrence: q_k = a_k*q_{k-1} + q_{k-2} with q_{-2} = 1,
	// q_{-1} = 0.
	var qPrev, qCur uint64 = 1, 0
	for den != 0 {
		a := num / den
		num, den = den, num%den
		qPrev, qCur = qCur, a*qCur+qPrev
		if qCur > maxDen {
			break
		}
		dens = append(dens, qCur)
	}
	return dens
}

// FactorFromMeasurement attempts to extract a non-trivial factor of N from
// one measurement y of the 2n-bit counting register (the classical
// post-processing of Shor's algorithm). It returns 0 when the measurement
// is uninformative — callers retry with further samples, exactly as a
// physical quantum computer would be used.
func FactorFromMeasurement(N, a, y uint64, countBits int) uint64 {
	if y == 0 {
		return 0
	}
	den := uint64(1) << uint(countBits)
	for _, r := range ContinuedFractionDenominators(y, den, N) {
		if r == 0 || ModPow(a, r, N) != 1 {
			continue
		}
		if r%2 != 0 {
			continue
		}
		half := ModPow(a, r/2, N)
		if half == N-1 {
			continue
		}
		for _, cand := range []uint64{GCD(half-1, N), GCD(half+1, N)} {
			if cand != 1 && cand != N && N%cand == 0 {
				return cand
			}
		}
	}
	return 0
}
