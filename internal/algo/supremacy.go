package algo

import (
	"fmt"

	"weaksim/internal/circuit"
	"weaksim/internal/gate"
	"weaksim/internal/rng"
)

// SupremacyParams configures a GRCS-style random circuit on a Rows×Cols
// qubit grid (Boixo et al., "Characterizing quantum supremacy in near-term
// devices", Nature Physics 2018 — the paper's reference [27]). The original
// instance files (github.com/sboixo/GRCS) are not available offline, so the
// generator reimplements the published construction rules from a seed; see
// DESIGN.md for the substitution note.
type SupremacyParams struct {
	Rows, Cols int
	// Depth is the number of CZ clock cycles after the initial Hadamard
	// layer (the paper's benchmarks use 10).
	Depth int
	// Seed drives the random single-qubit gate choices.
	Seed uint64
}

// Supremacy returns the supremacy_RxC_D benchmark circuit built by the
// GRCS rules:
//
//  1. A Hadamard on every qubit.
//  2. In each of Depth clock cycles, a staggered layer of CZ gates chosen
//     from eight repeating patterns that together cover every grid bond.
//  3. Single-qubit gates from {T, √X, √Y} on qubits idle in the current CZ
//     layer that participated in the previous cycle's CZ layer; the first
//     single-qubit gate on a qubit is always T, and a qubit never repeats
//     its previous single-qubit gate.
func Supremacy(p SupremacyParams) (*circuit.Circuit, error) {
	if p.Rows < 2 || p.Cols < 2 {
		return nil, fmt.Errorf("algo: supremacy grid must be at least 2x2, got %dx%d", p.Rows, p.Cols)
	}
	if p.Depth < 1 {
		return nil, fmt.Errorf("algo: supremacy depth must be positive, got %d", p.Depth)
	}
	n := p.Rows * p.Cols
	c := circuit.New(n, fmt.Sprintf("supremacy_%dx%d_%d", p.Rows, p.Cols, p.Depth))
	r := rng.New(p.Seed)
	qubit := func(row, col int) int { return row*p.Cols + col }

	for q := 0; q < n; q++ {
		c.H(q)
	}

	// Bookkeeping for the single-qubit gate rules.
	hadT := make([]bool, n) // qubit already received its first T
	lastGate := make([]gate.Kind, n)
	for q := range lastGate {
		lastGate[q] = gate.H
	}
	inPrevCZ := make([]bool, n)

	// The eight CZ patterns, ordered to alternate horizontal and vertical
	// staggers as in the GRCS layouts.
	patternOrder := []int{0, 4, 1, 5, 2, 6, 3, 7}

	for cycle := 0; cycle < p.Depth; cycle++ {
		pattern := patternOrder[cycle%8]
		inCZ := make([]bool, n)
		var pairs [][2]int
		if pattern < 4 {
			// Horizontal bonds staggered by column and row parity.
			colPar, rowPar := pattern%2, pattern/2
			for row := 0; row < p.Rows; row++ {
				if row%2 != rowPar {
					continue
				}
				for col := colPar; col+1 < p.Cols; col += 2 {
					pairs = append(pairs, [2]int{qubit(row, col), qubit(row, col+1)})
				}
			}
		} else {
			rowPar, colPar := pattern%2, (pattern-4)/2
			for col := 0; col < p.Cols; col++ {
				if col%2 != colPar {
					continue
				}
				for row := rowPar; row+1 < p.Rows; row += 2 {
					pairs = append(pairs, [2]int{qubit(row, col), qubit(row+1, col)})
				}
			}
		}
		for _, pr := range pairs {
			c.CZ(pr[0], pr[1])
			inCZ[pr[0]], inCZ[pr[1]] = true, true
		}

		// Single-qubit gates on qubits idle this cycle that had a CZ in
		// the previous cycle.
		for q := 0; q < n; q++ {
			if inCZ[q] || !inPrevCZ[q] {
				continue
			}
			g := pickSupremacyGate(r, hadT[q], lastGate[q])
			switch g {
			case gate.T:
				c.T(q)
				hadT[q] = true
			case gate.SX:
				c.Apply(gate.SXGate, q)
			case gate.SY:
				c.Apply(gate.SYGate, q)
			}
			lastGate[q] = g
		}
		inPrevCZ = inCZ
	}
	return c, nil
}

// pickSupremacyGate applies the GRCS single-qubit gate rules: the first
// gate is always T; afterwards draw uniformly from {T, √X, √Y} minus the
// qubit's previous gate.
func pickSupremacyGate(r *rng.RNG, hadT bool, last gate.Kind) gate.Kind {
	if !hadT {
		return gate.T
	}
	choices := make([]gate.Kind, 0, 2)
	for _, k := range []gate.Kind{gate.T, gate.SX, gate.SY} {
		if k != last {
			choices = append(choices, k)
		}
	}
	return choices[r.IntN(len(choices))]
}
