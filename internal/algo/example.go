package algo

import (
	"math"

	"weaksim/internal/circuit"
)

// RunningExample returns a 3-qubit circuit preparing the paper's running-
// example state (Figs. 2-4):
//
//	[0, -0.612i, 0, -0.612i, 0.354, 0, 0, 0.354]
//
// i.e. -i·√(3/8)·(|001⟩+|011⟩) + √(1/8)·(|100⟩+|111⟩). The figure's exact
// gate sequence is not fully recoverable from the paper text, so this
// circuit — Rx(2π/3) and X on q2 as in Fig. 2, followed by the entangling
// layer — prepares the identical state, which is all that Figs. 3 and 4
// depend on.
func RunningExample() *circuit.Circuit {
	c := circuit.New(3, "running_example")
	c.RX(2*math.Pi/3, 2) // q2: cos(π/3)|0⟩ - i·sin(π/3)|1⟩
	c.X(2)               // swap the branches: the -i amplitude moves to q2=0
	c.H(1)               // q1 into superposition
	c.X(0)               // q0 = 1 ...
	c.CX(2, 0)           // ... except in the q2=1 branch ...
	c.CCX(2, 1, 0)       // ... where q0 follows q1.
	return c
}

// RunningExampleProbabilities returns the exact Born distribution of the
// running example, the paper's Fig. 2 right-hand side:
// [0, 3/8, 0, 3/8, 1/8, 0, 0, 1/8].
func RunningExampleProbabilities() []float64 {
	return []float64{0, 3.0 / 8, 0, 3.0 / 8, 1.0 / 8, 0, 0, 1.0 / 8}
}

// Figure1Example returns the paper's Fig. 1 circuit: H on q2, CNOT(q2→q1),
// X on q0, CNOT(q1→q0), followed by (implicit) measurement of all qubits.
func Figure1Example() *circuit.Circuit {
	c := circuit.New(3, "figure1")
	c.H(2)
	c.CX(2, 1)
	c.X(0)
	c.CX(1, 0)
	return c
}
