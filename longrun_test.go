package weaksim_test

// Long-horizon health checks: decision diagrams must stay compact and
// accurate over tens of thousands of gate applications (Grover's algorithm
// is the paper's stress case — grover_35 runs 144k iterations). These tests
// guard the fixed-grid value-interning design in internal/cnum against
// regressions that only show up at scale; they are skipped under -short.

import (
	"fmt"
	"testing"

	"weaksim"
	"weaksim/internal/algo"
)

func TestGroverLongRunStaysCompact(t *testing.T) {
	if testing.Short() {
		t.Skip("long-horizon check skipped under -short")
	}
	for _, n := range []int{13, 16} {
		name := fmt.Sprintf("grover_%d", n)
		c, err := weaksim.GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		state, err := weaksim.Simulate(c)
		if err != nil {
			t.Fatal(err)
		}
		// The exact Grover state needs ~2n nodes; interning-grid boundary
		// straddles can duplicate a bounded number of them. Anything near
		// 2^n means sharing collapsed.
		if nodes := state.NodeCount(); nodes > 50*n {
			t.Errorf("%s: %d DD nodes — node sharing degraded (want O(n))", name, nodes)
		}
		// Accuracy end to end: the marked element must dominate samples.
		_, marked := algo.Grover(n, algo.DefaultSeed)
		sampler, err := state.Sampler(weaksim.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		shots := 2000
		hit := 0
		mask := uint64(1)<<uint(n) - 1
		for i := 0; i < shots; i++ {
			if sampler.ShotIndex()&mask == marked {
				hit++
			}
		}
		if frac := float64(hit) / float64(shots); frac < 0.95 {
			t.Errorf("%s: marked element sampled %.1f%% of the time, want >95%%", name, 100*frac)
		}
	}
}
