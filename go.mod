module weaksim

go 1.22
