package weaksim_test

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"weaksim"
)

// TestServeFacade starts the sampling daemon through the public facade,
// samples a named benchmark circuit over HTTP, and drains.
func TestServeFacade(t *testing.T) {
	d, err := weaksim.Serve(weaksim.ServeConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer d.Close()

	resp, err := http.Post("http://"+d.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"ghz_4","shots":64,"seed":9}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status=%d", resp.StatusCode)
	}
	var body struct {
		Counts map[string]int `json:"counts"`
		Qubits int            `json:"qubits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Qubits != 4 {
		t.Fatalf("qubits=%d, want 4", body.Qubits)
	}
	total := 0
	for bits, n := range body.Counts {
		if bits != "0000" && bits != "1111" {
			t.Fatalf("impossible GHZ bitstring %q", bits)
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("counts sum to %d, want 64", total)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeFacadeNodeBudget routes the library node-budget Option through
// the daemon and expects the MO → 507 mapping.
func TestServeFacadeNodeBudget(t *testing.T) {
	d, err := weaksim.Serve(weaksim.ServeConfig{Addr: "127.0.0.1:0"},
		weaksim.WithNodeBudget(2))
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer d.Close()
	resp, err := http.Post("http://"+d.Addr()+"/v1/sample", "application/json",
		strings.NewReader(`{"circuit":"qft_8","shots":8}`))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("status=%d, want 507", resp.StatusCode)
	}
	var eb struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if eb.Error.Code != "memory_out" {
		t.Fatalf("code=%q, want memory_out", eb.Error.Code)
	}
}

// TestServeClusterFacade stands up two daemons plus a cluster router through
// the public facade and samples through the router: the same circuit must
// keep landing on the same replica, warm after the first request, and the
// cluster status endpoint must report both backends healthy.
func TestServeClusterFacade(t *testing.T) {
	d1, err := weaksim.Serve(weaksim.ServeConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer d1.Close()
	d2, err := weaksim.Serve(weaksim.ServeConfig{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer d2.Close()

	router, err := weaksim.ServeCluster(weaksim.ClusterConfig{
		Addr:     "127.0.0.1:0",
		Backends: []string{d1.Addr(), d2.Addr()},
	})
	if err != nil {
		t.Fatalf("ServeCluster: %v", err)
	}
	defer router.Close()

	var backend string
	for i := 0; i < 2; i++ {
		resp, err := http.Post("http://"+router.Addr()+"/v1/sample", "application/json",
			strings.NewReader(`{"circuit":"ghz_5","shots":32,"seed":4}`))
		if err != nil {
			t.Fatalf("post via router: %v", err)
		}
		var body struct {
			Counts map[string]int `json:"counts"`
			Cached bool           `json:"cached"`
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status=%d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode: %v", err)
		}
		resp.Body.Close()
		name := resp.Header.Get("X-Weaksim-Backend")
		switch {
		case i == 0:
			backend = name
			if name == "" {
				t.Fatal("missing X-Weaksim-Backend")
			}
		case name != backend:
			t.Fatalf("circuit moved backend: %s then %s", backend, name)
		case !body.Cached:
			t.Fatal("second request not served warm")
		}
		total := 0
		for _, n := range body.Counts {
			total += n
		}
		if total != 32 {
			t.Fatalf("counts sum to %d, want 32", total)
		}
	}

	resp, err := http.Get("http://" + router.Addr() + "/v1/cluster")
	if err != nil {
		t.Fatalf("cluster status: %v", err)
	}
	defer resp.Body.Close()
	var st struct {
		Backends []struct {
			Healthy bool `json:"healthy"`
		} `json:"backends"`
		ReplicaCount int `json:"replica_count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	if len(st.Backends) != 2 || !st.Backends[0].Healthy || !st.Backends[1].Healthy {
		t.Fatalf("cluster status: %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := router.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
