package weaksim_test

import (
	"context"
	"errors"
	"testing"

	"weaksim"
)

// TestNodeBudgetSurvivesFacadeWrapping: the typed DD budget error must be
// detectable with errors.Is through every layer of facade wrapping, exactly
// like ErrMemoryOut on the vector side.
func TestNodeBudgetSurvivesFacadeWrapping(t *testing.T) {
	c, err := weaksim.GenerateBenchmark("qft_16")
	if err != nil {
		t.Fatal(err)
	}
	_, err = weaksim.SimulateContext(context.Background(), c, weaksim.WithNodeBudget(40))
	if !errors.Is(err, weaksim.ErrNodeBudget) {
		t.Fatalf("qft_16 under 40-node budget: err = %v, want ErrNodeBudget", err)
	}
	// The same failure through the one-call API.
	_, err = weaksim.Run(c, 10, weaksim.WithNodeBudget(40))
	if !errors.Is(err, weaksim.ErrNodeBudget) {
		t.Fatalf("Run under budget: err = %v, want ErrNodeBudget", err)
	}
}

func TestInvalidOpSurvivesFacadeWrapping(t *testing.T) {
	c := weaksim.NewCircuit(2, "bad")
	c.H(5) // out of range
	_, err := weaksim.Simulate(c)
	if err == nil {
		t.Fatal("out-of-range target accepted")
	}
	// Validation rejects it before either backend runs; the error must be
	// an ordinary returned error, never a panic (guarded at the facade).
	_, _, err = weaksim.SimulateAuto(context.Background(), c)
	if err == nil {
		t.Fatal("SimulateAuto accepted an invalid circuit")
	}
}

// TestSimulateAutoUsesVectorTierWhenItFits: small circuits stay on the
// dense backend and the dense-backed State still samples correctly.
func TestSimulateAutoUsesVectorTierWhenItFits(t *testing.T) {
	c := weaksim.NewCircuit(2, "bell")
	c.H(0).CX(0, 1)
	state, report, err := weaksim.SimulateAuto(context.Background(), c, weaksim.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if report.Backend != "vector" {
		t.Errorf("backend = %q, want vector", report.Backend)
	}
	if len(report.Fallbacks) != 0 {
		t.Errorf("unexpected fallbacks: %v", report.Fallbacks)
	}
	if report.Fidelity != 1 {
		t.Errorf("exact run fidelity = %v", report.Fidelity)
	}
	sampler, err := state.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	counts := sampler.Counts(2000)
	if counts["01"]+counts["10"] != 0 {
		t.Errorf("bell state produced odd-parity outcomes: %v", counts)
	}
	if counts["00"] == 0 || counts["11"] == 0 {
		t.Errorf("bell state missing an even-parity outcome: %v", counts)
	}
}

// TestSimulateAutoDegradesToDD is the acceptance check: a benchmark beyond
// the default 26-qubit vector budget must fall back to the DD backend, with
// the degradation recorded in the report.
func TestSimulateAutoDegradesToDD(t *testing.T) {
	c, err := weaksim.GenerateBenchmark("qft_32")
	if err != nil {
		t.Fatal(err)
	}
	state, report, err := weaksim.SimulateAuto(context.Background(), c, weaksim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if report.Backend != "dd" {
		t.Errorf("backend = %q, want dd", report.Backend)
	}
	if len(report.Fallbacks) == 0 {
		t.Error("vector→DD fallback not recorded in the report")
	}
	if report.Fidelity != 1 {
		t.Errorf("exact DD run fidelity = %v", report.Fidelity)
	}
	if report.PeakNodes == 0 {
		t.Error("DD run recorded no peak node count")
	}
	sampler, err := state.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if got := sampler.Shot(); len(got) != 32 {
		t.Errorf("sample has %d bits, want 32", len(got))
	}
}

// TestSimulateAutoApproximatesUnderPressure: with a node budget too small
// for the exact run and a fidelity floor, the planner prunes and completes;
// the report records the approximations and the cumulative fidelity.
func TestSimulateAutoApproximatesUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("supremacy strong simulation in -short mode")
	}
	c, err := weaksim.GenerateBenchmark("supremacy_4x4_10")
	if err != nil {
		t.Fatal(err)
	}
	const floor = 0.2
	state, report, err := weaksim.SimulateAuto(context.Background(), c,
		weaksim.WithVectorBudget(10),
		weaksim.WithNodeBudget(20000),
		weaksim.WithMinFidelity(floor),
	)
	if err != nil {
		t.Fatalf("planner failed: %v\nreport: %v", err, report)
	}
	if report.Backend != "dd" {
		t.Errorf("backend = %q, want dd", report.Backend)
	}
	if report.Approximations == 0 {
		t.Error("no approximations recorded despite node-budget pressure")
	}
	if report.Fidelity < floor || report.Fidelity >= 1 {
		t.Errorf("fidelity = %v, want in [%v, 1)", report.Fidelity, floor)
	}
	if state.NodeCount() > 20000 {
		t.Errorf("final state has %d nodes, over the %d budget", state.NodeCount(), 20000)
	}
	sampler, err := state.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if got := sampler.Shot(); len(got) != 16 {
		t.Errorf("sample has %d bits, want 16", len(got))
	}
}

// TestSimulateAutoRespectsFidelityFloor: when the floor forbids enough
// pruning, the planner fails promptly with the typed budget error and a
// report that explains why.
func TestSimulateAutoRespectsFidelityFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("supremacy strong simulation in -short mode")
	}
	c, err := weaksim.GenerateBenchmark("supremacy_4x4_10")
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := weaksim.SimulateAuto(context.Background(), c,
		weaksim.WithVectorBudget(10),
		weaksim.WithNodeBudget(20000),
		weaksim.WithMinFidelity(0.999999),
	)
	if !errors.Is(err, weaksim.ErrNodeBudget) {
		t.Fatalf("err = %v, want ErrNodeBudget", err)
	}
	if report == nil {
		t.Fatal("nil report on failure")
	}
	if report.Approximations > 8 {
		t.Errorf("planner looped %d times before giving up", report.Approximations)
	}
}

func TestSimulateContextPreCancelled(t *testing.T) {
	c, err := weaksim.GenerateBenchmark("qft_16")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := weaksim.SimulateContext(ctx, c); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateContext: %v, want context.Canceled", err)
	}
	if _, _, err := weaksim.SimulateAuto(ctx, c); !errors.Is(err, context.Canceled) {
		t.Errorf("SimulateAuto: %v, want context.Canceled", err)
	}
	if _, _, err := weaksim.RunAuto(ctx, c, 100); !errors.Is(err, context.Canceled) {
		t.Errorf("RunAuto: %v, want context.Canceled", err)
	}
}

func TestRunAutoEndToEnd(t *testing.T) {
	c := weaksim.NewCircuit(3, "ghz")
	c.H(0).CX(0, 1).CX(1, 2)
	counts, report, err := weaksim.RunAuto(context.Background(), c, 4000, weaksim.WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if report.Backend != "vector" {
		t.Errorf("backend = %q, want vector", report.Backend)
	}
	if counts["000"]+counts["111"] != 4000 {
		t.Errorf("GHZ counts: %v", counts)
	}
}

// TestFacadeNeverPanics: malformed input at the facade becomes a returned
// error, never an escaped panic.
func TestFacadeNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("facade panicked: %v", r)
		}
	}()
	if _, err := weaksim.Simulate(nil); err == nil {
		t.Error("Simulate(nil) returned no error")
	}
	if _, _, err := weaksim.SimulateAuto(context.Background(), nil); err == nil {
		t.Error("SimulateAuto(nil) returned no error")
	}
	if _, err := weaksim.Run(nil, 10); err == nil {
		t.Error("Run(nil) returned no error")
	}
}
