package weaksim

// Resource-governed simulation: context cancellation, node budgets, and the
// vector→DD→approximation degradation planner.
//
// The paper's Table I is a story about resource exhaustion — vector-based
// sampling goes "MO" exactly where DD-based sampling survives. This file
// makes both failure modes first-class and recoverable: the dense backend
// is bounded by WithVectorBudget (statevec.ErrMemoryOut), the DD backend by
// WithNodeBudget (dd.ErrNodeBudget), every long-running stage accepts a
// context, and SimulateAuto walks the degradation ladder
//
//	dense vector  →  decision diagram  →  fidelity-bounded approximation
//
// recording each step it takes in a RunReport. The approximation tier is
// the lever of Hillmich et al.'s follow-up "As Accurate as Needed, as
// Efficient as Possible" (arXiv:2012.05615): prune low-probability branches
// while the cumulative fidelity stays above a caller-supplied floor.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"weaksim/internal/core"
	"weaksim/internal/dd"
	"weaksim/internal/obs"
	"weaksim/internal/sim"
	"weaksim/internal/statevec"
)

// ErrNodeBudget reports that a decision diagram outgrew the node budget set
// with WithNodeBudget — the DD-side analogue of ErrMemoryOut. Detect it
// with errors.Is; it survives all facade wrapping.
var ErrNodeBudget = dd.ErrNodeBudget

// ErrInvalidOp reports a malformed operation (out-of-range target or
// control, non-bijective permutation). Both backends return it — wrapped —
// instead of panicking.
var ErrInvalidOp = statevec.ErrInvalidOp

// IsMemoryOut reports whether err is a resource-exhaustion failure: either
// the dense backend's ErrMemoryOut or the DD backend's ErrNodeBudget — the
// paper's "MO" class. cmd/weaksim maps it to exit code 3 and the weaksimd
// daemon to HTTP 507 Insufficient Storage.
func IsMemoryOut(err error) bool {
	return errors.Is(err, ErrMemoryOut) || errors.Is(err, ErrNodeBudget)
}

// IsTimeout reports whether err is a deadline or cancellation failure — the
// paper's "TO" class. cmd/weaksim maps it to exit code 4 and the weaksimd
// daemon to HTTP 504 Gateway Timeout.
func IsTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// RunReport describes what a governed simulation actually did: which
// backend produced the state, which fallbacks were taken on the way, and
// what the run cost.
type RunReport struct {
	// Backend is the backend that produced the state: "vector", "dd", or
	// "none" when every tier failed.
	Backend string
	// Fallbacks lists the degradation steps taken, in order, in human-
	// readable form (e.g. the vector→DD switch, each approximation).
	Fallbacks []string
	// Approximations counts fidelity-bounded prunes applied under node-
	// budget pressure.
	Approximations int
	// Fidelity is the cumulative |⟨approx|exact⟩|² of the returned state;
	// 1 for an exact run.
	Fidelity float64
	// Elapsed is the wall-clock time of the whole attempt, including
	// failed tiers.
	Elapsed time.Duration
	// PeakNodes is the decision-diagram live-node high-water mark (0 for
	// pure vector runs).
	PeakNodes int
	// SnapshotNodes is the node count of the immutable state snapshot the
	// sampling stage ran on (RunAuto only; 0 when no sampling happened or
	// the state was vector-backed). Once the state is frozen, sampling can
	// no longer hit the node budget: the MO/TO failure modes of the paper's
	// Table I are confined to the strong-simulation stage.
	SnapshotNodes int
	// NodeBudget echoes the configured DD node budget (0 = unlimited).
	NodeBudget int
	// Telemetry is the machine-readable summary of the run: per-phase
	// durations (when WithMetrics attached a registry), peak nodes, and
	// cache hit rates. Non-nil whenever the DD backend was entered; nil
	// only for pure vector runs without a registry and for early usage
	// failures.
	Telemetry *Telemetry
}

func (r *RunReport) note(format string, args ...any) {
	r.Fallbacks = append(r.Fallbacks, fmt.Sprintf(format, args...))
}

// noteEvent records a degradation-ladder step both in the human-readable
// fallback list and, when tracing is enabled, as a structured govern-phase
// trace event.
func (r *RunReport) noteEvent(tr *obs.Tracer, name string, attrs map[string]any, format string, args ...any) {
	r.note(format, args...)
	if tr != nil {
		if attrs == nil {
			attrs = map[string]any{}
		}
		attrs["detail"] = r.Fallbacks[len(r.Fallbacks)-1]
		tr.Event(obs.PhaseGovern, name, attrs)
	}
}

// String renders the report in one line per fact, for CLI -stats output.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "backend=%s fidelity=%.6g elapsed=%v", r.Backend, r.Fidelity, r.Elapsed.Round(time.Microsecond))
	if r.PeakNodes > 0 {
		fmt.Fprintf(&b, " peak-nodes=%d", r.PeakNodes)
	}
	if r.NodeBudget > 0 {
		fmt.Fprintf(&b, " node-budget=%d", r.NodeBudget)
	}
	if r.SnapshotNodes > 0 {
		fmt.Fprintf(&b, " snapshot-nodes=%d", r.SnapshotNodes)
	}
	for _, f := range r.Fallbacks {
		fmt.Fprintf(&b, "\nfallback: %s", f)
	}
	return b.String()
}

// guard converts a panic escaping a facade entry point into a returned
// error, so callers never see a panic for malformed input. Typed sentinel
// errors (ErrMemoryOut, ErrNodeBudget, ErrInvalidOp, context errors) are
// returned as ordinary wrapped errors and are unaffected.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("weaksim: internal panic: %v", r)
	}
}

// newGovernedDD builds a DD simulator honoring the config's normalization
// scheme, node budget, and observability attachments.
func newGovernedDD(c *Circuit, cfg config) (*sim.DDSimulator, error) {
	mgrOpts := []dd.Option{dd.WithNormalization(cfg.norm)}
	if cfg.nodeBudget > 0 {
		mgrOpts = append(mgrOpts, dd.WithNodeBudget(cfg.nodeBudget))
	}
	return sim.NewDD(c,
		sim.WithManagerOptions(mgrOpts...),
		sim.WithObservability(cfg.reg, cfg.tracer))
}

// SimulateContext is Simulate with cooperative cancellation and resource
// governance: the context is checked every sim.CtxCheckOps operations, and
// a WithNodeBudget bound surfaces as ErrNodeBudget instead of unbounded
// growth.
func SimulateContext(ctx context.Context, c *Circuit, opts ...Option) (st *State, err error) {
	defer guard(&err)
	cfg := newConfig(opts)
	stopBuild := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseBuild)
	s, err := newGovernedDD(c, cfg)
	stopBuild()
	if err != nil {
		return nil, err
	}
	stopApply := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseApply)
	edge, err := s.RunContext(ctx)
	stopApply()
	if err != nil {
		return nil, fmt.Errorf("weaksim: %w", err)
	}
	return &State{mgr: s.Manager(), edge: edge, cfg: cfg}, nil
}

// SimulateAuto strongly simulates the circuit under the full degradation
// policy:
//
//  1. The dense vector backend runs first when the circuit fits the vector
//     budget (WithVectorBudget, default 26 qubits). On ErrMemoryOut it
//     falls back to tier 2 — the paper's "MO" hand-off in reverse.
//  2. The decision-diagram backend runs under the node budget
//     (WithNodeBudget, 0 = unlimited).
//  3. On dd.ErrNodeBudget, if WithMinFidelity set a floor > 0, the
//     in-flight state is pruned (core.Approximate) with escalating
//     thresholds until it fits the budget again, and the run resumes —
//     as long as the cumulative fidelity stays at or above the floor.
//
// The returned RunReport records the backend used, every fallback taken,
// the cumulative fidelity, elapsed time, and the DD node high-water mark.
// The report is non-nil even when the error is non-nil, so harnesses can
// render "MO"/"TO" cells from a failed attempt.
func SimulateAuto(ctx context.Context, c *Circuit, opts ...Option) (st *State, report *RunReport, err error) {
	defer guard(&err)
	cfg := newConfig(opts)
	report = &RunReport{Backend: "none", Fidelity: 1, NodeBudget: cfg.nodeBudget}
	start := time.Now()
	defer func() { report.Elapsed = time.Since(start) }()

	// Tier 1: dense vector backend within the memory budget.
	vecBudget := cfg.vectorQubits
	if vecBudget <= 0 {
		vecBudget = statevec.DefaultMaxQubits
	}
	vs, verr := sim.NewVector(c, vecBudget)
	if verr == nil {
		stopVec := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseApply)
		var dense *statevec.State
		dense, verr = vs.RunContext(ctx)
		stopVec()
		if verr == nil {
			report.Backend = "vector"
			st := &State{dense: dense, cfg: cfg}
			report.Telemetry = st.Telemetry()
			return st, report, nil
		}
	}
	if !errors.Is(verr, ErrMemoryOut) {
		// Validation failures, invalid ops, and context errors are not
		// resource exhaustion — switching backends cannot cure them.
		return nil, report, fmt.Errorf("weaksim: %w", verr)
	}
	report.noteEvent(cfg.tracer, "vector-to-dd", map[string]any{"vector_budget_qubits": vecBudget},
		"vector backend: %v → falling back to DD", verr)

	// Tier 2 + 3: DD backend under the node budget, pruning under pressure.
	stopBuild := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseBuild)
	s, err := newGovernedDD(c, cfg)
	stopBuild()
	if err != nil {
		return nil, report, fmt.Errorf("weaksim: %w", err)
	}
	report.Backend = "dd"
	mgr := s.Manager()
	// The DD tier's telemetry digest is attached on every exit path — the
	// failed ones included, so MO/TO harness cells still carry peak nodes
	// and hit rates.
	defer func() {
		report.Telemetry = telemetryFromDD(mgr.TableStats(), mgr.PeakNodes(), mgr.LiveNodes(), cfg.reg)
	}()
	fidelity := 1.0
	const maxPrunes = 64 // hard stop against pathological no-progress loops
	stuckPos := -1       // op index of the last budget failure
	shrink := 2          // prune target divisor: budget/shrink live nodes
	for {
		stopApply := obs.StartPhase(cfg.reg, cfg.tracer, obs.PhaseApply)
		edge, rerr := s.RunContext(ctx)
		stopApply()
		report.PeakNodes = mgr.PeakNodes()
		if rerr == nil {
			report.Fidelity = fidelity
			return &State{mgr: mgr, edge: edge, cfg: cfg}, report, nil
		}
		if !errors.Is(rerr, ErrNodeBudget) || cfg.minFidelity <= 0 || report.Approximations >= maxPrunes {
			report.Fidelity = fidelity
			return nil, report, fmt.Errorf("weaksim: %w", rerr)
		}
		// A repeated failure at the same op means the last prune left the
		// state small enough on its own but not small enough to survive the
		// operator product — prune harder (smaller target) this time instead
		// of looping without progress.
		if s.Pos() == stuckPos {
			shrink *= 2
		} else {
			stuckPos, shrink = s.Pos(), 2
		}
		f, perr := pruneUnderBudget(s, fidelity, cfg.minFidelity, shrink)
		if perr != nil {
			report.noteEvent(cfg.tracer, "approximation-failed", map[string]any{"op": s.Pos()},
				"approximation cannot recover: %v", perr)
			report.Fidelity = fidelity
			return nil, report, fmt.Errorf("weaksim: %w", rerr)
		}
		fidelity *= f
		report.Approximations++
		report.noteEvent(cfg.tracer, "approximate", map[string]any{
			"op":                  s.Pos(),
			"shrink":              shrink,
			"step_fidelity":       f,
			"cumulative_fidelity": fidelity,
			"live_nodes":          mgr.LiveNodes(),
		}, "dd node budget hit at op %d: pruned state to ≤budget/%d nodes, step fidelity %.6g (cumulative %.6g)",
			s.Pos(), shrink, f, fidelity)
	}
}

// pruneUnderBudget shrinks the simulator's in-flight state with
// core.Approximate, escalating the prune threshold until the live node
// count fits comfortably under the budget (budget/shrink, leaving headroom
// for the next operator product; the caller widens shrink when the same op
// keeps failing). It fails — leaving the last pruned state installed but
// coherent — when no threshold fits without dropping the cumulative
// fidelity (have × step) below minFidelity.
//
// The node budget is suspended while the pruned state is rebuilt: the
// rebuild transiently adds nodes before the old state becomes collectable.
func pruneUnderBudget(s *sim.DDSimulator, have, minFidelity float64, shrink int) (float64, error) {
	mgr := s.Manager()
	budget := mgr.NodeBudget()
	mgr.SetNodeBudget(0)
	defer mgr.SetNodeBudget(budget)

	if shrink < 2 {
		shrink = 2
	}
	target := budget / shrink
	if target < 1 {
		target = 1
	}
	cum := 1.0
	for threshold := 1e-10; threshold < 0.5; threshold *= 100 {
		edge, f, err := core.Approximate(mgr, s.State(), threshold)
		if err != nil {
			return 0, err
		}
		if have*cum*f < minFidelity {
			return 0, fmt.Errorf("pruning to fit budget %d would drop fidelity below the floor %g",
				budget, minFidelity)
		}
		cum *= f
		s.SetState(edge)
		s.Collect()
		if mgr.LiveNodes() <= target {
			return cum, nil
		}
	}
	return 0, fmt.Errorf("no pruning threshold fits the state under budget/%d = %d nodes within fidelity floor %g",
		shrink, target, minFidelity)
}

// RunAuto is the one-call governed weak simulation: SimulateAuto followed
// by shots context-aware measurement samples. On sampling cancellation the
// partial counts drawn so far are returned alongside the error; the report
// is non-nil in every case.
//
// Sampling runs on an immutable snapshot of the final state (see
// Manager.Freeze): once SimulateAuto returns, no further degradation step
// can occur — the snapshot lives outside the node budget, so drawing any
// number of shots can neither trigger ErrNodeBudget nor force another
// approximation. The degradation ladder therefore ends at the freeze, and
// the report's SnapshotNodes records what the sampler actually walked. With
// WithWorkers the shot batch is sharded across concurrent walkers on that
// one snapshot.
func RunAuto(ctx context.Context, c *Circuit, shots int, opts ...Option) (counts map[string]int, report *RunReport, err error) {
	defer guard(&err)
	if shots < 1 {
		return nil, &RunReport{Backend: "none", Fidelity: 1}, errors.New("weaksim: shots must be positive")
	}
	state, report, err := SimulateAuto(ctx, c, opts...)
	if err != nil {
		return nil, report, err
	}
	sampler, err := state.Sampler()
	if err != nil {
		return nil, report, err
	}
	report.SnapshotNodes = sampler.SnapshotNodes()
	counts, err = sampler.CountsContext(ctx, shots)
	return counts, report, err
}
