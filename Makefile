# Development targets. `make check` is the tier-1 gate: everything a commit
# must pass. `make race` adds the race detector over the short suite —
# the Manager is documented single-threaded, so this guards the test
# harness itself and any future parallel sampler work.

GO ?= go

.PHONY: check build vet test race bench bench-json table clean

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The sampling fast path benchmark watched for regressions (Section IV).
bench:
	$(GO) test -run '^$$' -bench BenchmarkDDSampling -benchtime 2s .

# Regenerate the Table I rows that fit a laptop.
table:
	$(GO) run ./cmd/benchtable

# Machine-readable benchmark snapshot: a quick row set with per-phase
# timings, peak nodes, and cache hit rates, written to BENCH_<timestamp>.json.
bench-json:
	$(GO) run ./cmd/benchtable -rows qft_16,qft_32,shor_33_2,jellium_2x2 -shots 100000 -json-out auto

clean:
	$(GO) clean ./...
