# Development targets. `make check` is the tier-1 gate: everything a commit
# must pass. `make race` adds the race detector over the short suite, and
# `make race-stress` repeatedly hammers the parallel-sampling tests — the
# Manager is documented single-threaded, but frozen snapshots are sampled
# concurrently, so those paths get dedicated race coverage.

GO ?= go

.PHONY: check build vet test race race-stress bench bench-frozen bench-json table clean

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Dedicated race stress over the freeze-then-sample worker pool: every
# parallel/stress test, three times, under the race detector.
race-stress:
	$(GO) test -race -run 'Parallel|Stress|Workers' -count=3 ./...

# The sampling fast path benchmark watched for regressions (Section IV).
bench:
	$(GO) test -run '^$$' -bench BenchmarkDDSampling -benchtime 2s .

# Frozen-vs-live per-shot sampling cost (the freeze-then-sample refactor's
# headline number; committed snapshot lives in BENCH_FROZEN.txt).
bench-frozen:
	$(GO) test -run '^$$' -bench 'BenchmarkSampleLive|BenchmarkSampleFrozen|BenchmarkFreeze' -benchtime 100000x .

# Regenerate the Table I rows that fit a laptop.
table:
	$(GO) run ./cmd/benchtable

# Machine-readable benchmark snapshot: a quick row set with per-phase
# timings, peak nodes, and cache hit rates, written to BENCH_<timestamp>.json.
bench-json:
	$(GO) run ./cmd/benchtable -rows qft_16,qft_32,shor_33_2,jellium_2x2 -shots 100000 -json-out auto

clean:
	$(GO) clean ./...
