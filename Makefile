# Development targets. `make check` is the tier-1 gate: everything a commit
# must pass. `make race` adds the race detector over the short suite —
# the Manager is documented single-threaded, so this guards the test
# harness itself and any future parallel sampler work.

GO ?= go

.PHONY: check build vet test race bench table clean

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The sampling fast path benchmark watched for regressions (Section IV).
bench:
	$(GO) test -run '^$$' -bench BenchmarkDDSampling -benchtime 2s .

# Regenerate the Table I rows that fit a laptop.
table:
	$(GO) run ./cmd/benchtable

clean:
	$(GO) clean ./...
