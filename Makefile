# Development targets, mirrored by .github/workflows/ci.yml.
#
# CI gates (every push / pull request):
#   make check        tier-1: vet + build + full test suite (Go 1.22 and 1.23)
#   make fmt-check    gofmt -l must be empty
#   make race         race detector over the short suite
#   make race-stress  parallel/stress tests x3 under the race detector — the
#                     Manager is documented single-threaded, but frozen
#                     snapshots are sampled concurrently (and now served
#                     concurrently by weaksimd), so those paths get dedicated
#                     race coverage
#   make bench-gate   frozen-sampling ns/shot vs the committed baseline in
#                     BENCH_FROZEN.txt (best of 3 runs vs the slowest
#                     committed row, 25% tolerance)
#   make cover-gate   total statement coverage >= the floor in coverage.floor
#   make slo-gate     observability smoke: daemon boot, trace IDs on every
#                     response, well-formed /v1/slo (see cmd/slogate)
#   make cluster-gate replica-cluster e2e: 3 in-process replicas + router,
#                     cold/warm/kill-one-mid-load, zero failed requests and
#                     zero second strong simulations (see cmd/clustergate)
#   make job-gate     durable batch-job e2e: build the real weaksimd binary,
#                     SIGKILL it mid-run, restart, and assert every job
#                     finishes with counts bit-identical to an uninterrupted
#                     reference run and at most one re-sampled chunk per job
#                     (see cmd/jobgate)
#   make lint         go vet plus staticcheck (when installed; CI pins
#                     STATICCHECK_VERSION)
#
# The perf and coverage gates are armed by committed files: regenerate
# BENCH_FROZEN.txt with `make bench-frozen` when the fleet changes, and
# raise coverage.floor as the suite grows (never lower it to merge).

GO ?= go

# Pinned staticcheck release used by the CI lint job (and `make lint` when a
# staticcheck binary is on PATH — we never install tools implicitly).
STATICCHECK_VERSION ?= 2024.1.1

.PHONY: check build vet test fmt-check lint race race-stress chaos fuzz-smoke bench bench-frozen bench-gate bench-json cover cover-gate slo-gate cluster-gate job-gate table serve clean

check: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Fails when any file needs gofmt; prints the offenders.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Static analysis: go vet always, staticcheck when a binary is available.
# The lint job in CI installs the pinned STATICCHECK_VERSION first; locally
# we skip with a notice rather than install tools behind your back.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck $$(staticcheck -version 2>/dev/null | head -1)"; \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; ran go vet only" ; \
		echo "lint: install with: go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)"; \
	fi

race:
	$(GO) test -race -short ./...

# Dedicated race stress over the freeze-then-sample worker pool: every
# parallel/stress test, three times, under the race detector.
race-stress:
	$(GO) test -race -run 'Parallel|Stress|Workers' -count=3 ./...

# Chaos suite: every deterministic fault-injection test (the internal/fault
# matrix across dd, core, serve, snapstore, and the daemon's kill-and-restart
# e2e) under the race detector. The fault plan is process-global state
# flipped mid-test, so the race detector is part of the contract, not an
# extra.
chaos:
	$(GO) test -race -run 'Chaos|Fault' -count=1 ./...

# Short fuzz smoke for CI: the QASM parser fuzzers plus the snapshot binary
# decoder, ~30s each. Not a soak — just enough to catch a decoder that
# panics on the corpus neighborhoods of valid inputs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 30s ./internal/circuit/qasm
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 30s ./internal/dd
	$(GO) test -run '^$$' -fuzz FuzzMakeVNode -fuzztime 30s ./internal/dd

# The sampling fast path benchmark watched for regressions (Section IV).
bench:
	$(GO) test -run '^$$' -bench BenchmarkDDSampling -benchtime 2s .

# Frozen-vs-live per-shot sampling cost (the freeze-then-sample refactor's
# headline number; committed snapshot lives in BENCH_FROZEN.txt). Sampling
# rows run at 2M fixed iterations x3 so the committed baseline is a min-of-3
# of ~0.2-3s measurements — long enough to average over scheduler jitter on
# small hosts, and symmetric with what cmd/benchcheck measures. The freeze
# benchmark runs separately with a small fixed iteration count: one freeze
# of shor_33_2 costs ~20ms, so 2000000x would blow the go test timeout.
bench-frozen:
	$(GO) test -run '^$$' -bench 'BenchmarkSampleLive|BenchmarkSampleFrozen' -benchtime 2000000x -count 3 .
	$(GO) test -run '^$$' -bench 'BenchmarkFreeze' -benchtime 50x .
	$(GO) test -run '^$$' -bench 'BenchmarkBuildFreeze' -benchtime 10x -count 3 .

# CI perf regression gate: re-run BenchmarkSampleFrozen (3 runs, keep the
# fastest) and compare against the slowest committed row per benchmark in
# BENCH_FROZEN.txt with 25% tolerance. The min-vs-max asymmetry is what
# keeps the gate quiet on hosts whose schedulers drift between runs while
# still catching real slowdowns. See cmd/benchcheck for the knobs.
# The second invocation gates the live-engine build+freeze path (arena
# allocation, open-addressing unique tables, direct-mapped compute caches):
# a whole-circuit strong simulation plus Freeze per iteration, so a storage
# regression that per-shot sampling can't see still trips CI.
bench-gate:
	$(GO) run ./cmd/benchcheck
	$(GO) run ./cmd/benchcheck -bench BenchmarkBuildFreeze -benchtime 10x

# Statement coverage with an HTML-able profile.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

# CI coverage gate: total statement coverage must not drop below the floor
# committed in coverage.floor.
cover-gate: cover
	@floor="$$(cat coverage.floor)"; \
	total="$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub(/%/,"",$$3); print $$3}')"; \
	echo "coverage: total $$total% (floor $$floor%)"; \
	awk -v t="$$total" -v f="$$floor" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || \
		{ echo "coverage gate FAILED: $$total% < $$floor%"; exit 1; }

# Observability smoke gate: boot the daemon in-process, issue cold + warm
# /v1/sample requests, and assert the tracing/SLO contract — every response
# carries X-Weaksim-Trace-Id, an inbound traceparent is adopted, ?debug=1
# phase breakdowns cover the pipeline, /v1/slo and /v1/stats are
# well-formed, and /debug/flight streams valid JSONL. See cmd/slogate.
slo-gate:
	$(GO) run ./cmd/slogate

# Replica-cluster e2e gate: boot three real replicas plus a router
# in-process, drive cold/warm/failover phases (killing one replica in the
# middle of concurrent load), and assert zero non-200 responses, bit-for-bit
# deterministic counts, snapshot shipping to every ring secondary, and a
# fleet-wide strong-simulation count that never exceeds the number of
# distinct circuits. See cmd/clustergate.
cluster-gate:
	$(GO) run ./cmd/clustergate

# Durable batch-job e2e gate: build weaksimd, run three jobs uninterrupted
# for reference counts, SIGKILL a second daemon mid-run, restart it on the
# same WAL dir, and assert all jobs complete bit-identically with at most
# one re-sampled chunk per job. See cmd/jobgate.
job-gate:
	$(GO) run ./cmd/jobgate

# Regenerate the Table I rows that fit a laptop.
table:
	$(GO) run ./cmd/benchtable

# Run the sampling daemon locally (see cmd/weaksimd -h for the knobs).
serve:
	$(GO) run ./cmd/weaksimd -addr :8080

# Machine-readable benchmark snapshot: a quick row set with per-phase
# timings, peak nodes, and cache hit rates, written to BENCH_<timestamp>.json.
bench-json:
	$(GO) run ./cmd/benchtable -rows qft_16,qft_32,shor_33_2,jellium_2x2 -shots 100000 -json-out auto

clean:
	$(GO) clean ./...
