package weaksim_test

import (
	"math"
	"strings"
	"testing"

	"weaksim"
	"weaksim/internal/algo"
	"weaksim/internal/stats"
)

func TestFacadeApproximate(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("running_example")
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	approx, fidelity, err := state.Approximate(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fidelity-0.75) > 1e-9 {
		t.Errorf("fidelity = %v, want 3/4", fidelity)
	}
	// The pruned branch (q2 = 1) must be gone from samples.
	sampler, err := approx.Sampler(weaksim.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if shot := sampler.Shot(); shot[0] == '1' {
			t.Fatalf("sampled pruned branch: %s", shot)
		}
	}
	if _, _, err := state.Approximate(1.5); err == nil {
		t.Error("expected error for threshold > 1")
	}
}

func TestFacadeMeasureQubit(t *testing.T) {
	c := weaksim.NewCircuit(2, "bell")
	c.H(0).CX(0, 1)
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	p, err := state.QubitProbability(0)
	if err != nil || math.Abs(p-0.5) > 1e-9 {
		t.Fatalf("P(q0=1) = %v, %v; want 1/2", p, err)
	}
	seen := map[int]bool{}
	for seed := uint64(1); seed <= 30; seed++ {
		bit, post, err := state.MeasureQubit(0, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen[bit] = true
		// Bell correlations: the partner qubit collapses with it.
		p1, err := post.QubitProbability(1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p1-float64(bit)) > 1e-9 {
			t.Errorf("measured q0=%d but P(q1=1)=%v", bit, p1)
		}
		if n2 := post.Norm2(); math.Abs(n2-1) > 1e-9 {
			t.Errorf("post-measurement norm² = %v", n2)
		}
	}
	if !seen[0] || !seen[1] {
		t.Error("30 seeded measurements of a fair qubit saw only one outcome")
	}
	if _, _, err := state.MeasureQubit(5, 1); err == nil {
		t.Error("expected error for out-of-range qubit")
	}
}

func TestExtensionBenchmarksRunEndToEnd(t *testing.T) {
	for _, name := range []string{"ghz_10", "wstate_6", "bv_9", "dj_6_balanced"} {
		c, err := weaksim.GenerateBenchmark(name)
		if err != nil {
			t.Fatal(err)
		}
		counts, err := weaksim.Run(c, 200, weaksim.WithSeed(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		total := 0
		for _, n := range counts {
			total += n
		}
		if total != 200 {
			t.Errorf("%s: %d samples, want 200", name, total)
		}
	}
}

func TestGHZSamplesAreCorrelated(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("ghz_12")
	counts, err := weaksim.Run(c, 1000, weaksim.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	zeros := counts["000000000000"]
	ones := counts["111111111111"]
	if zeros+ones != 1000 {
		t.Errorf("GHZ produced uncorrelated outcomes: %v", counts)
	}
	if zeros == 0 || ones == 0 {
		t.Errorf("GHZ missing a branch: %v", counts)
	}
}

func TestSamplersIndistinguishableWithoutExactDistribution(t *testing.T) {
	// The MO-regime check: when the exact distribution is unavailable (or
	// just not consulted), two independent samplers over the same state
	// must be statistically indistinguishable from each other. Uses the
	// peaky shor_33_2 distribution and the two-sample chi-square.
	c, err := weaksim.GenerateBenchmark("shor_33_2")
	if err != nil {
		t.Fatal(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	ddSampler, err := state.Sampler(weaksim.WithMethod(weaksim.MethodDD), weaksim.WithSeed(101))
	if err != nil {
		t.Fatal(err)
	}
	prefixSampler, err := state.Sampler(weaksim.WithMethod(weaksim.MethodPrefix), weaksim.WithSeed(202))
	if err != nil {
		t.Fatal(err)
	}
	shots := 30000
	a := ddSampler.CountsByIndex(shots)
	b := prefixSampler.CountsByIndex(shots)
	res, err := stats.TwoSampleChiSquare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-6 {
		t.Errorf("DD and prefix samplers distinguishable: stat=%.2f dof=%d p=%v",
			res.Statistic, res.DoF, res.PValue)
	}
}

func TestFacadeTopOutcomes(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("running_example")
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	top, err := state.TopOutcomes(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d outcomes", len(top))
	}
	want := map[string]bool{"001": true, "011": true}
	for _, o := range top {
		if !want[o.Bits] {
			t.Errorf("unexpected top outcome %q", o.Bits)
		}
		if math.Abs(o.Probability-0.375) > 1e-9 {
			t.Errorf("probability %v, want 3/8", o.Probability)
		}
	}
	if _, err := state.TopOutcomes(0); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestFacadeWriteDOT(t *testing.T) {
	c, _ := weaksim.GenerateBenchmark("running_example")
	state, _ := weaksim.Simulate(c)
	var sb strings.Builder
	if err := state.WriteDOT(&sb, "re"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "digraph") {
		t.Error("DOT output missing digraph header")
	}
}

func TestShorEndToEndFactors15(t *testing.T) {
	// The full user journey: simulate shor_15_2, sample the counting
	// register, push samples through continued fractions until a factor
	// falls out — as examples/shor does.
	c, err := weaksim.GenerateBenchmark("shor_15_2")
	if err != nil {
		t.Fatal(err)
	}
	state, err := weaksim.Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := state.Sampler(weaksim.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	workBits, countBits := algo.ShorCountingBits(15)
	for shot := 0; shot < 40; shot++ {
		y := sampler.ShotIndex() >> uint(workBits)
		if f := algo.FactorFromMeasurement(15, 2, y, countBits); f == 3 || f == 5 {
			return // success
		}
	}
	t.Error("40 shots never produced a factor of 15")
}
