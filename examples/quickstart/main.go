// Quickstart: the paper's Fig. 2 pipeline on the running example — build a
// circuit, strongly simulate it into a decision diagram, inspect amplitudes
// and probabilities, then weakly simulate it by drawing measurement samples
// that look just like the output of a physical quantum computer.
package main

import (
	"fmt"
	"log"
	"sort"

	"weaksim"
)

func main() {
	// The running example of the paper (Figs. 2-4): a 3-qubit circuit
	// preparing -i·√(3/8)·(|001⟩+|011⟩) + √(1/8)·(|100⟩+|111⟩).
	c, err := weaksim.GenerateBenchmark("running_example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Quantum circuit description:")
	fmt.Print(c.Render())

	// Strong simulation: compute the final state (as a decision diagram).
	state, err := weaksim.Simulate(c)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nStrong simulation: %d-qubit state in %d DD nodes\n",
		state.Qubits(), state.NodeCount())

	fmt.Println("\nAmplitudes (not observable on a physical machine):")
	for i := uint64(0); i < 8; i++ {
		amp, err := state.AmplitudeAt(i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  α_%03b = %6.3f%+.3fi\n", i, real(amp), imag(amp))
	}

	probs, err := state.Probabilities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMeasurement probabilities |α|²:")
	for i, p := range probs {
		fmt.Printf("  p(|%03b⟩) = %.4f\n", i, p)
	}

	// Weak simulation: nondeterministic samples, exactly what quantum
	// hardware outputs.
	sampler, err := state.Sampler(weaksim.WithSeed(2020))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWeak simulation — 10 measurement shots:")
	for i := 0; i < 10; i++ {
		fmt.Printf("  %s\n", sampler.Shot())
	}

	shots := 100000
	counts := sampler.Counts(shots)
	fmt.Printf("\nHistogram of %d shots (exact: 37.5%%, 37.5%%, 12.5%%, 12.5%%):\n", shots)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s: %6.2f%%\n", k, 100*float64(counts[k])/float64(shots))
	}

	// A Bell pair with the builder API.
	bell := weaksim.NewCircuit(2, "bell")
	bell.H(0).CX(0, 1)
	bellCounts, err := weaksim.Run(bell, 1000, weaksim.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBell pair, 1000 shots: %v\n", bellCounts)
}
