// Shor factoring demo: run the order-finding circuit for N (the paper's
// shor_N_a workload), sample the counting register as a quantum computer
// would, and push each sample through the classical continued-fraction
// post-processing until a non-trivial factor of N appears.
package main

import (
	"flag"
	"fmt"
	"log"

	"weaksim"
	"weaksim/internal/algo"
)

func main() {
	var (
		n     = flag.Uint64("N", 15, "odd composite to factor")
		a     = flag.Uint64("a", 2, "coprime base for order finding")
		seed  = flag.Uint64("seed", 11, "sampling seed")
		tries = flag.Int("max-shots", 50, "maximum measurement attempts")
	)
	flag.Parse()

	circuit, err := algo.Shor(*n, *a)
	if err != nil {
		log.Fatal(err)
	}
	workBits, countBits := algo.ShorCountingBits(*n)
	fmt.Printf("Order finding for N=%d, a=%d: %d qubits (%d work + %d counting), %d ops\n",
		*n, *a, circuit.NQubits, workBits, countBits, circuit.NumOps())
	if r, err := algo.MultiplicativeOrder(*a, *n); err == nil {
		fmt.Printf("(classically, the order of %d mod %d is %d)\n", *a, *n, r)
	}

	state, err := weaksim.Simulate(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Final state: %d DD nodes (state space 2^%d)\n\n", state.NodeCount(), circuit.NQubits)

	sampler, err := state.Sampler(weaksim.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}

	for shot := 1; shot <= *tries; shot++ {
		idx := sampler.ShotIndex()
		// The counting register occupies the high 2n bits.
		y := idx >> uint(workBits)
		factor := algo.FactorFromMeasurement(*n, *a, y, countBits)
		fmt.Printf("shot %2d: counting register y = %4d / 2^%d", shot, y, countBits)
		if factor == 0 {
			fmt.Println("  → uninformative, measuring again")
			continue
		}
		fmt.Printf("  → continued fractions give factor %d\n", factor)
		fmt.Printf("\n%d = %d × %d\n", *n, factor, *n/factor)
		return
	}
	fmt.Println("no factor found — try more shots or another base")
}
