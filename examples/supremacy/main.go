// Supremacy-circuit demo: generate a GRCS-style random circuit (the
// paper's supremacy_AxB_D workload), strongly simulate it, and check that
// the sampled outputs show the Porter-Thomas signature of a chaotic quantum
// state — the very property the quantum-supremacy experiments measure. It
// also demonstrates where decision diagrams stop compressing: random
// circuits drive the DD towards its worst case.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"weaksim"
	"weaksim/internal/algo"
)

func main() {
	var (
		rows  = flag.Int("rows", 4, "grid rows")
		cols  = flag.Int("cols", 4, "grid columns")
		depth = flag.Int("depth", 10, "CZ clock cycles")
		seed  = flag.Uint64("seed", algo.DefaultSeed, "circuit and sampling seed")
		shots = flag.Int("shots", 50000, "measurement samples")
	)
	flag.Parse()

	circuit, err := algo.Supremacy(algo.SupremacyParams{
		Rows: *rows, Cols: *cols, Depth: *depth, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := circuit.NQubits
	fmt.Printf("%s: %d qubits, %d gates %v\n", circuit.Name, n, circuit.NumOps(), circuit.GateCounts())

	state, err := weaksim.Simulate(circuit)
	if err != nil {
		log.Fatal(err)
	}
	nodes := state.NodeCount()
	fmt.Printf("final state: %d DD nodes ≈ 2^%.1f (state space 2^%d)\n",
		nodes, math.Log2(float64(nodes)), n)

	// Porter-Thomas check: for a chaotic state, outcome probabilities
	// follow an exponential distribution, so the expected value of
	// ln(2^n · p) over *sampled* outcomes is 1 - γ ≈ 0.4228 (the
	// cross-entropy benchmarking baseline of Boixo et al.).
	sampler, err := state.Sampler(weaksim.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}
	size := math.Pow(2, float64(n))
	var sum float64
	for i := 0; i < *shots; i++ {
		idx := sampler.ShotIndex()
		amp, err := state.AmplitudeAt(idx)
		if err != nil {
			log.Fatal(err)
		}
		p := real(amp)*real(amp) + imag(amp)*imag(amp)
		sum += math.Log(size * p)
	}
	got := sum / float64(*shots)
	const want = 1 - 0.57721566490153286 // 1 - Euler-Mascheroni
	fmt.Printf("\nPorter-Thomas statistic ⟨ln(2^n·p)⟩ over %d sampled outcomes: %.4f (chaotic ideal %.4f)\n",
		*shots, got, want)
	if math.Abs(got-want) < 0.1 {
		fmt.Println("The sampled outputs carry the supremacy-circuit signature.")
	} else {
		fmt.Println("Statistic off the chaotic ideal — increase depth for full scrambling.")
	}
}
