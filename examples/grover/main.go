// Grover search demo: hide a random needle among 2^n basis states, run
// Grover's algorithm with a random oracle (the paper's grover_A workload),
// and recover the needle from measurement samples alone — the way a user
// of a physical quantum computer would.
package main

import (
	"flag"
	"fmt"
	"log"

	"weaksim"
	"weaksim/internal/algo"
)

func main() {
	var (
		n     = flag.Int("n", 12, "number of search qubits")
		seed  = flag.Uint64("seed", 7, "oracle and sampling seed")
		shots = flag.Int("shots", 200, "measurement samples")
	)
	flag.Parse()

	circuit, marked := algo.Grover(*n, *seed)
	fmt.Printf("Searching %d items with %d Grover iterations (%d qubits, %d gates)\n",
		1<<uint(*n), algo.GroverIterations(*n), circuit.NQubits, circuit.NumOps())
	fmt.Printf("The oracle secretly marks item %d\n\n", marked)

	state, err := weaksim.Simulate(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Final state fits in %d DD nodes (vs 2^%d amplitudes dense)\n",
		state.NodeCount(), circuit.NQubits)

	sampler, err := state.Sampler(weaksim.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}

	// Measure. The search register is the low n bits; the top bit is the
	// oracle ancilla (in |−⟩, so it reads 0 or 1 uniformly).
	tally := make(map[uint64]int)
	for i := 0; i < *shots; i++ {
		idx := sampler.ShotIndex()
		tally[idx&(uint64(1)<<uint(*n)-1)]++
	}
	var best uint64
	bestCount := -1
	for item, count := range tally {
		if count > bestCount {
			best, bestCount = item, count
		}
	}
	fmt.Printf("\nAfter %d shots the most frequent search-register value is %d (%d hits, %.1f%%)\n",
		*shots, best, bestCount, 100*float64(bestCount)/float64(*shots))
	if best == marked {
		fmt.Println("Found the marked item — just like the real thing.")
	} else {
		fmt.Println("Missed the marked item (expected with very low probability).")
	}
}
