// QASM interchange demo: export a benchmark circuit as OpenQASM 2.0, parse
// it back, and verify that both circuits weakly simulate to statistically
// identical outputs — the interchange path a downstream toolchain would use.
package main

import (
	"flag"
	"fmt"
	"log"

	"weaksim"
	"weaksim/internal/circuit/qasm"
	"weaksim/internal/stats"
)

func main() {
	var (
		bench = flag.String("bench", "qft_6", "benchmark to round-trip (must be QASM-expressible)")
		shots = flag.Int("shots", 50000, "samples for the indistinguishability check")
	)
	flag.Parse()

	original, err := weaksim.GenerateBenchmark(*bench)
	if err != nil {
		log.Fatal(err)
	}
	src, err := qasm.Write(original)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %s as %d bytes of OpenQASM 2.0:\n\n", original.Name, len(src))
	fmt.Println(head(src, 12))

	parsed, err := qasm.Parse(src, original.Name+"_roundtrip")
	if err != nil {
		log.Fatal(err)
	}

	stateA, err := weaksim.Simulate(original)
	if err != nil {
		log.Fatal(err)
	}
	stateB, err := weaksim.Simulate(parsed)
	if err != nil {
		log.Fatal(err)
	}

	// Sample the round-tripped circuit and test against the original's
	// exact distribution.
	probs, err := stateA.Probabilities()
	if err != nil {
		log.Fatal(err)
	}
	sampler, err := stateB.Sampler(weaksim.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	counts := sampler.CountsByIndex(*shots)
	res, err := stats.ChiSquareGOF(counts, probs, *shots)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chi-square of round-tripped samples vs original distribution: stat=%.2f dof=%d p=%.4f\n",
		res.Statistic, res.DoF, res.PValue)
	if res.PValue > 0.001 {
		fmt.Println("round trip preserved the circuit: outputs are statistically indistinguishable")
	} else {
		fmt.Println("ROUND TRIP BROKE THE CIRCUIT")
	}
}

func head(s string, lines int) string {
	out := ""
	for i, line := range splitLines(s) {
		if i >= lines {
			out += "...\n"
			break
		}
		out += line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
