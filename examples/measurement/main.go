// Measurement-collapse demo: simulated measurement can be repeated
// non-destructively (the luxury of weak simulation, paper Section IV-B),
// but this library also models what hardware actually does — destructive
// single-qubit measurement with state collapse. The demo measures a GHZ
// state qubit by qubit and shows the collapse cascade, then contrasts it
// with approximate weak simulation of a skewed state.
package main

import (
	"fmt"
	"log"

	"weaksim"
)

func main() {
	// GHZ state: (|000⟩ + |111⟩)/√2 — measuring any one qubit collapses
	// all three.
	c := weaksim.NewCircuit(3, "ghz")
	c.H(0).CX(0, 1).CX(1, 2)
	state, err := weaksim.Simulate(c)
	if err != nil {
		log.Fatal(err)
	}

	p1, err := state.QubitProbability(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GHZ state: P(q0=1) = %.3f\n", p1)

	for trial := uint64(1); trial <= 4; trial++ {
		fmt.Printf("\ntrial %d:\n", trial)
		s := state
		for q := 0; q < 3; q++ {
			bit, post, err := s.MeasureQubit(q, trial*31+uint64(q))
			if err != nil {
				log.Fatal(err)
			}
			pNext := 0.0
			if q < 2 {
				pNext, err = post.QubitProbability(q + 1)
				if err != nil {
					log.Fatal(err)
				}
			}
			fmt.Printf("  measured q%d = %d", q, bit)
			if q < 2 {
				fmt.Printf("   → P(q%d=1) collapsed to %.3f", q+1, pNext)
			}
			fmt.Println()
			s = post
		}
	}

	// Approximate weak simulation: prune a low-probability branch and
	// sample from the smaller diagram.
	skew := weaksim.NewCircuit(4, "skewed")
	skew.RY(0.45, 3) // small amplitude on the q3=1 branch
	for q := 0; q < 3; q++ {
		skew.H(q)
	}
	full, err := weaksim.Simulate(skew)
	if err != nil {
		log.Fatal(err)
	}
	approx, fidelity, err := full.Approximate(0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nskewed state: %d DD nodes; approximated at threshold 0.1: %d nodes, fidelity %.4f\n",
		full.NodeCount(), approx.NodeCount(), fidelity)
	sampler, err := approx.Sampler(weaksim.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	counts := sampler.Counts(10)
	fmt.Printf("10 shots from the approximate state: %v\n", counts)
	fmt.Println("(all samples have q3 = 0 — the pruned branch is gone)")
}
