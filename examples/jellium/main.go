// Jellium demo: weak simulation as a physics instrument. The uniform-
// electron-gas Trotter circuit (the paper's jellium_AxA workload) conserves
// particle number, so every measurement shot must contain exactly A²
// electrons; per-site occupancies estimated from samples converge to the
// exact values computed from the state. This is how one would actually use
// a quantum computer — estimating observables from bitstring statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/bits"

	"weaksim"
	"weaksim/internal/algo"
)

func main() {
	var (
		grid  = flag.Int("grid", 2, "lattice side length A (2A² qubits)")
		steps = flag.Int("steps", 2, "Trotter steps")
		shots = flag.Int("shots", 20000, "measurement samples")
		seed  = flag.Uint64("seed", 6, "sampling seed")
	)
	flag.Parse()

	circuit, err := algo.Jellium(algo.JelliumParams{Grid: *grid, Steps: *steps})
	if err != nil {
		log.Fatal(err)
	}
	n := circuit.NQubits
	fmt.Printf("%s: %d qubits (%dx%d sites × 2 spins), %d gates, %d Trotter steps\n",
		circuit.Name, n, *grid, *grid, circuit.NumOps(), *steps)

	state, err := weaksim.Simulate(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final state: %d DD nodes (state space 2^%d)\n\n", state.NodeCount(), n)

	sampler, err := state.Sampler(weaksim.WithSeed(*seed))
	if err != nil {
		log.Fatal(err)
	}

	electrons := *grid * *grid // half filling
	occupancy := make([]float64, n)
	violations := 0
	for i := 0; i < *shots; i++ {
		idx := sampler.ShotIndex()
		if bits.OnesCount64(idx) != electrons {
			violations++
		}
		for q := 0; q < n; q++ {
			if idx>>uint(q)&1 == 1 {
				occupancy[q]++
			}
		}
	}
	fmt.Printf("particle-number violations in %d shots: %d (conservation law)\n\n", *shots, violations)

	fmt.Println("site occupancies ⟨n⟩ estimated from samples (up/down spin):")
	for r := 0; r < *grid; r++ {
		for c := 0; c < *grid; c++ {
			site := r**grid + c
			up := occupancy[2*site] / float64(*shots)
			down := occupancy[2*site+1] / float64(*shots)
			fmt.Printf("  site (%d,%d): ↑ %.3f  ↓ %.3f  total %.3f\n", r, c, up, down, up+down)
		}
	}

	// Exact check for small grids: occupancies from the state itself.
	if n <= 20 {
		probs, err := state.Probabilities()
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for q := 0; q < n; q++ {
			var exact float64
			for i, p := range probs {
				if uint64(i)>>uint(q)&1 == 1 {
					exact += p
				}
			}
			if d := exact - occupancy[q]/float64(*shots); d*d > worst*worst {
				worst = d
			}
		}
		fmt.Printf("\nworst sampled-vs-exact occupancy deviation: %+.4f (shot noise ~%.4f)\n",
			worst, 1/(2*float64(*shots/100)))
	}
}
